package cluster

import (
	"fmt"
	"testing"
)

// ringKeys builds a deterministic key population shaped like real routing
// keys (algorithm|scheduler|policy|nt|nb|window).
func ringKeys(n int) []string {
	keys := make([]string, n)
	algs := []string{"cholesky", "qr", "lu"}
	scheds := []string{"quark", "starpu", "ompss"}
	for i := range keys {
		keys[i] = fmt.Sprintf("%s|%s||%d|%d|0", algs[i%len(algs)], scheds[(i/3)%len(scheds)], 2+i%60, 8+8*(i%4))
	}
	return keys
}

func owners(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			panic("empty ring")
		}
		out[k] = o
	}
	return out
}

// TestRingMinimalRemapping is the consistent-hashing property test: when a
// node joins an N-node ring, only the keys the new node takes over may
// move (expected |K|/(N+1)); when it leaves again, exactly the keys it
// owned move and everything else stays put.
func TestRingMinimalRemapping(t *testing.T) {
	const nKeys = 4000
	keys := ringKeys(nKeys)
	for _, nNodes := range []int{2, 3, 5, 8} {
		r := NewRing(0)
		for i := 0; i < nNodes; i++ {
			r.Add(fmt.Sprintf("worker-%d", i))
		}
		before := owners(r, keys)

		// Join: moved keys must all move TO the joiner, and their count
		// must stay near |K|/(N+1). The 2x factor absorbs vnode placement
		// variance (128 vnodes keeps the spread tight, not exact).
		r.Add("joiner")
		after := owners(r, keys)
		moved := 0
		for k, o := range after {
			if o != before[k] {
				moved++
				if o != "joiner" {
					t.Fatalf("n=%d: key %q moved %s -> %s, not to the joiner", nNodes, k, before[k], o)
				}
			}
		}
		expected := nKeys / (nNodes + 1)
		if moved > 2*expected {
			t.Fatalf("n=%d: join remapped %d keys, want <= %d (2x expected %d)", nNodes, moved, 2*expected, expected)
		}
		if moved == 0 {
			t.Fatalf("n=%d: join remapped nothing; ring is not spreading", nNodes)
		}

		// Leave: the ring must return exactly to the pre-join assignment —
		// remove(add(ring)) is the identity on ownership.
		r.Remove("joiner")
		restored := owners(r, keys)
		for k, o := range restored {
			if o != before[k] {
				t.Fatalf("n=%d: key %q owned by %s after leave, originally %s", nNodes, k, o, before[k])
			}
		}
	}
}

// TestRingSpread sanity-checks that no node owns a grossly outsized share
// of the key population.
func TestRingSpread(t *testing.T) {
	const nKeys, nNodes = 6000, 4
	r := NewRing(0)
	for i := 0; i < nNodes; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	counts := map[string]int{}
	for _, k := range ringKeys(nKeys) {
		o, _ := r.Owner(k)
		counts[o]++
	}
	if len(counts) != nNodes {
		t.Fatalf("only %d of %d nodes own keys: %v", len(counts), nNodes, counts)
	}
	fair := nKeys / nNodes
	for n, c := range counts {
		if c < fair/3 || c > 3*fair {
			t.Fatalf("node %s owns %d keys, fair share %d; spread too skewed: %v", n, c, fair, counts)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("a")
	r.Add("a") // idempotent
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d after duplicate add, want 1", got)
	}
	if o, ok := r.Owner("k"); !ok || o != "a" {
		t.Fatalf("single-node ring routed to %q/%v, want a", o, ok)
	}
	r.Remove("missing") // no-op
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after removing its only node: len=%d points=%d", r.Len(), len(r.points))
	}
	if !NewRing(0).Has("x") == false {
		t.Fatal("Has on empty ring")
	}
}
