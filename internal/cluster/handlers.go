package cluster

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"

	"supersim/internal/server"
)

// routes builds the coordinator mux: the worker control plane under
// /cluster/ (authenticated by the shared key) and a client-facing job API
// mirroring the worker's own (submit, get, list, metrics, health).
func (c *Coordinator) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", c.handleRegister)
	mux.HandleFunc("POST /cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs", c.handleList)
	mux.HandleFunc("GET /jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

type apiError struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, retryable bool, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Retryable: retryable})
}

// authed gates the worker control plane on the shared cluster key.
func (c *Coordinator) authed(r *http.Request) bool {
	got := r.Header.Get("X-Cluster-Key")
	return subtle.ConstantTimeCompare([]byte(got), []byte(c.cfg.Key)) == 1
}

// RegisterRequest is a worker's registration body.
type RegisterRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// RegisterResponse tells the worker its heartbeat contract.
type RegisterResponse struct {
	HeartbeatMS int64 `json:"heartbeat_ms"`
	TimeoutMS   int64 `json:"timeout_ms"`
}

const maxBodyBytes = 1 << 20

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !c.authed(r) {
		writeError(w, http.StatusUnauthorized, false, "bad or missing X-Cluster-Key")
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, false, "decoding registration: %v", err)
		return
	}
	if req.Name == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, false, "registration needs name and url")
		return
	}
	c.register(req.Name, req.URL)
	writeJSON(w, http.StatusOK, RegisterResponse{
		HeartbeatMS: c.cfg.HeartbeatInterval.Milliseconds(),
		TimeoutMS:   c.cfg.HeartbeatTimeout.Milliseconds(),
	})
}

// HeartbeatRequest is a worker's liveness proof.
type HeartbeatRequest struct {
	Name string `json:"name"`
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !c.authed(r) {
		writeError(w, http.StatusUnauthorized, false, "bad or missing X-Cluster-Key")
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, false, "decoding heartbeat: %v", err)
		return
	}
	if !c.heartbeat(req.Name) {
		// Unknown worker — a restarted coordinator lost the registration.
		// 404 tells the agent to re-register.
		writeError(w, http.StatusNotFound, true, "unknown worker %q; re-register", req.Name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var spec server.JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, false, "decoding job spec: %v", err)
		return
	}
	auth := [2]string{r.Header.Get("X-API-Key"), r.Header.Get("Authorization")}
	// submit journals the acceptance through AppendSync before returning —
	// the 202 below never outruns the fsync.
	id, err := c.submit(spec, auth)
	if err != nil {
		writeError(w, http.StatusBadRequest, false, "%v", err)
		return
	}
	c.mu.Lock()
	view := c.dispatchView(c.dispatches[id])
	c.mu.Unlock()
	w.Header().Set("Location", "/jobs/"+id)
	writeJSON(w, http.StatusAccepted, view)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	d, ok := c.dispatches[r.PathValue("id")]
	var view DispatchView
	if ok {
		view = c.dispatchView(d)
	}
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, false, "no such dispatch %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	views := make([]DispatchView, 0, len(c.order))
	for _, id := range c.order {
		views = append(views, c.dispatchView(c.dispatches[id]))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Metrics())
}

// Health is the coordinator's /healthz document.
type Health struct {
	Status     string         `json:"status"`
	Workers    []WorkerStatus `json:"workers"`
	Live       int            `json:"live"`
	Dispatches int            `json:"dispatches"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", Workers: c.workerStatuses()}
	for _, ws := range h.Workers {
		if ws.Live {
			h.Live++
		}
	}
	c.mu.Lock()
	h.Dispatches = len(c.dispatches)
	c.mu.Unlock()
	if h.Live == 0 {
		h.Status = "no-workers"
	}
	writeJSON(w, http.StatusOK, h)
}
