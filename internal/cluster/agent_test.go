package cluster

import (
	"context"
	"testing"
	"time"
)

// TestAgentJitterBounds pins the heartbeat jitter contract: every delay
// lies in [0.5, 1.5) × base.
func TestAgentJitterBounds(t *testing.T) {
	a := &Agent{Name: "w1"}
	base := time.Second
	for i := 0; i < 1000; i++ {
		d := a.jitterDelay(base)
		if d < base/2 || d >= base+base/2 {
			t.Fatalf("delay %v outside [%v, %v)", d, base/2, base+base/2)
		}
	}
}

// TestAgentJitterNoThunder is the anti-thundering-herd property: two
// workers started in the same instant must not keep heartbeating in the
// same instants. We simulate both schedules and assert their cumulative
// fire times separate and stay decorrelated — no lockstep window where
// every beat of one lands within a hair of the other's.
func TestAgentJitterNoThunder(t *testing.T) {
	a := &Agent{Name: "alpha"}
	b := &Agent{Name: "beta"}
	base := time.Second

	const beats = 200
	var ta, tb time.Duration
	coincide := 0
	for i := 0; i < beats; i++ {
		ta += a.jitterDelay(base)
		tb += b.jitterDelay(base)
		diff := ta - tb
		if diff < 0 {
			diff = -diff
		}
		// "Same instant" at fleet scale: within 1% of the base interval.
		if diff < base/100 {
			coincide++
		}
	}
	// With [0.5,1.5) jitter the schedules random-walk apart; a handful of
	// chance near-misses is fine, synchrony is not.
	if coincide > beats/10 {
		t.Fatalf("schedules coincided %d/%d beats — heartbeats are thundering", coincide, beats)
	}

	// Identical names would replay identical schedules; distinct names
	// must draw distinct streams.
	a2 := &Agent{Name: "alpha"}
	b2 := &Agent{Name: "beta"}
	if a2.jitterDelay(base) == b2.jitterDelay(base) && a2.jitterDelay(base) == b2.jitterDelay(base) {
		t.Fatal("distinct workers drew identical jitter streams")
	}
}

// TestAgentRegistersAndRecovers runs a real agent against a real
// coordinator: it registers, heartbeats keep it live past the timeout,
// and after the coordinator forgets it (restart), the 404 heartbeat
// drives re-registration.
func TestAgentRegistersAndRecovers(t *testing.T) {
	w1 := newTestWorker(t, "")
	c, hs := newTestCoordinator(t, "")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agent := &Agent{
		Coordinator: hs.URL,
		Key:         testKey,
		Name:        "w1",
		URL:         w1.http.URL,
		Interval:    30 * time.Millisecond,
	}
	go func() { _ = agent.Run(ctx) }()

	waitLive := func(what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			ws := c.workerStatuses()
			if len(ws) == 1 && ws[0].Live {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: worker never live: %+v", what, ws)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitLive("initial registration")

	// Outlive the heartbeat timeout: the agent's beats must keep the
	// worker live (the coordinator's timeout is 250ms; the agent fires
	// every ~15-45ms).
	time.Sleep(400 * time.Millisecond)
	if ws := c.workerStatuses(); len(ws) != 1 || !ws[0].Live {
		t.Fatalf("worker fell dead despite heartbeats: %+v", ws)
	}

	// Coordinator "restart": forget the worker. The next heartbeat 404s
	// and the agent re-registers.
	c.mu.Lock()
	delete(c.workers, "w1")
	c.ring.Remove("w1")
	c.mu.Unlock()
	waitLive("re-registration after coordinator restart")
}
