package cluster

import (
	"net/http"
	"time"

	"supersim/internal/server"
	"supersim/internal/stats"
)

// MetricsSnapshot is the coordinator's /metrics document: its own control
// counters plus the cluster-wide aggregation of every live worker's
// /metrics. Cache counters sum (so "captures" across the cluster reads
// exactly like a single node's), and latency histograms merge via
// stats.MergeHistograms with quantiles re-derived from the merged bins.
type MetricsSnapshot struct {
	UptimeMS   float64        `json:"uptime_ms"`
	Workers    []WorkerStatus `json:"workers"`
	Live       int            `json:"live"`
	Dispatches int            `json:"dispatches"`
	Inflight   int            `json:"inflight"`
	// Dispatched counts part submissions accepted by workers; Failovers
	// counts parts re-routed off dead workers; Deduped counts duplicate
	// completions dropped because their fingerprints matched the already
	// recorded result; Mismatches counts duplicates that disagreed (an
	// invariant violation worth alerting on — it should stay 0).
	Dispatched uint64 `json:"dispatched"`
	Failovers  uint64 `json:"failovers"`
	Deduped    uint64 `json:"deduped"`
	Mismatches uint64 `json:"mismatches"`

	Jobs      server.JobCounts    `json:"jobs"`
	Cache     server.CacheStats   `json:"cache"`
	QueueWait server.LatencyStats `json:"queue_wait"`
	Run       server.LatencyStats `json:"run"`
	// Unreachable lists live workers whose /metrics fetch failed; their
	// counters are missing from the aggregates above.
	Unreachable []string `json:"unreachable,omitempty"`
}

// Metrics assembles the cluster-wide snapshot, fetching each live
// worker's /metrics.
func (c *Coordinator) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeMS:   float64(time.Since(c.start).Nanoseconds()) / 1e6,
		Workers:    c.workerStatuses(),
		Dispatched: c.dispatched.Load(),
		Failovers:  c.failovers.Load(),
		Deduped:    c.deduped.Load(),
		Mismatches: c.mismatches.Load(),
	}
	type target struct{ name, url string }
	var targets []target
	c.mu.Lock()
	snap.Dispatches = len(c.dispatches)
	for _, id := range c.order {
		d := c.dispatches[id]
		if d.status != StatusDone && d.status != StatusFailed {
			snap.Inflight++
		}
	}
	for _, w := range c.liveWorkersLocked() {
		snap.Live++
		targets = append(targets, target{w.name, w.url})
	}
	c.mu.Unlock()

	var queueWaits, runs []server.LatencyStats
	for _, t := range targets {
		var m server.MetricsSnapshot
		status, err := c.workerRequest(http.MethodGet, t.url+"/metrics", nil, [2]string{}, nil, &m)
		if err != nil || status != http.StatusOK {
			snap.Unreachable = append(snap.Unreachable, t.name)
			continue
		}
		snap.Jobs.Submitted += m.Jobs.Submitted
		snap.Jobs.Queued += m.Jobs.Queued
		snap.Jobs.Running += m.Jobs.Running
		snap.Jobs.Done += m.Jobs.Done
		snap.Jobs.Failed += m.Jobs.Failed
		snap.Jobs.Dead += m.Jobs.Dead
		snap.Jobs.Rejected += m.Jobs.Rejected
		snap.Jobs.RateLimited += m.Jobs.RateLimited
		snap.Jobs.Retries += m.Jobs.Retries
		snap.Cache.Hits += m.Cache.Hits
		snap.Cache.DiskHits += m.Cache.DiskHits
		snap.Cache.PeerHits += m.Cache.PeerHits
		snap.Cache.Misses += m.Cache.Misses
		snap.Cache.Bypass += m.Cache.Bypass
		snap.Cache.Captures += m.Cache.Captures
		snap.Cache.Entries += m.Cache.Entries
		snap.Cache.Evictions += m.Cache.Evictions
		snap.Cache.DiskWrites += m.Cache.DiskWrites
		snap.Cache.DiskDrops += m.Cache.DiskDrops
		snap.Cache.FramesServed += m.Cache.FramesServed
		queueWaits = append(queueWaits, m.QueueWait)
		runs = append(runs, m.Run)
	}
	snap.QueueWait = mergeLatency(queueWaits)
	snap.Run = mergeLatency(runs)
	return snap
}

// histFromBins reconstructs a stats.Histogram from its JSON bin form.
func histFromBins(bins []server.HistogramBin) *stats.Histogram {
	if len(bins) == 0 {
		return nil
	}
	h := &stats.Histogram{
		Lo:     bins[0].LoMS,
		Hi:     bins[len(bins)-1].HiMS,
		Counts: make([]int, len(bins)),
		Edges:  make([]float64, len(bins)+1),
	}
	h.Width = (h.Hi - h.Lo) / float64(len(bins))
	for i, b := range bins {
		h.Counts[i] = b.Count
		h.Edges[i] = b.LoMS
		h.N += b.Count
	}
	h.Edges[len(bins)] = bins[len(bins)-1].HiMS
	return h
}

// clusterLatencyBins matches the workers' per-series bin count.
const clusterLatencyBins = 10

// mergeLatency folds several workers' latency series into one: counts
// sum, means combine weighted by retained-sample mass, the max is the max
// of maxes, and the histogram (with its p50/p95) is the stats.Histogram
// merge of the per-worker histograms — exact for identical bin edges,
// mass-preserving rebinning otherwise.
func mergeLatency(series []server.LatencyStats) server.LatencyStats {
	var out server.LatencyStats
	var hs []*stats.Histogram
	var weighted, mass float64
	for _, s := range series {
		out.Count += s.Count
		if s.MaxMS > out.MaxMS {
			out.MaxMS = s.MaxMS
		}
		h := histFromBins(s.Histogram)
		if h == nil {
			continue
		}
		hs = append(hs, h)
		// Weight the mean by the histogram mass (the retained window), not
		// the lifetime count: both sides of the average cover the same
		// samples.
		weighted += s.MeanMS * float64(h.N)
		mass += float64(h.N)
	}
	merged := stats.MergeHistograms(hs, clusterLatencyBins)
	if merged == nil {
		return out
	}
	if mass > 0 {
		out.MeanMS = weighted / mass
	}
	out.P50MS = histQuantile(merged, 0.50)
	out.P95MS = histQuantile(merged, 0.95)
	out.Histogram = make([]server.HistogramBin, len(merged.Counts))
	for i, n := range merged.Counts {
		out.Histogram[i] = server.HistogramBin{LoMS: merged.Edges[i], HiMS: merged.Edges[i+1], Count: n}
	}
	return out
}

// histQuantile reads quantile q off a histogram by linear interpolation
// within the bin where the cumulative mass crosses q — the resolution the
// merged representation supports.
func histQuantile(h *stats.Histogram, q float64) float64 {
	if h == nil || h.N == 0 {
		return 0
	}
	target := q * float64(h.N)
	cum := 0.0
	for i, n := range h.Counts {
		next := cum + float64(n)
		if next >= target && n > 0 {
			frac := (target - cum) / float64(n)
			return h.Edges[i] + frac*(h.Edges[i+1]-h.Edges[i])
		}
		cum = next
	}
	return h.Edges[len(h.Edges)-1]
}
