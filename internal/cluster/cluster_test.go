package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"supersim/internal/server"
)

const testKey = "test-cluster-key"

// testWorker is one in-process simd instance behind an httptest listener.
type testWorker struct {
	srv  *server.Server
	http *httptest.Server
}

func newTestWorker(t *testing.T, dataDir string) *testWorker {
	t.Helper()
	srv, err := server.New(server.Config{Pool: 2, ClusterKey: testKey, DataDir: dataDir})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	w := &testWorker{srv: srv, http: hs}
	t.Cleanup(func() { w.stop() })
	return w
}

func (w *testWorker) stop() {
	if w.http != nil {
		w.http.Close()
		w.http = nil
	}
	if w.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = w.srv.Shutdown(ctx)
		cancel()
		w.srv = nil
	}
}

// newTestCoordinator builds a coordinator with test-speed timing and
// registers the given workers under w1, w2, ... Names sort in index
// order, keeping placement deterministic.
func newTestCoordinator(t *testing.T, dataDir string, workers ...*testWorker) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(Config{
		Key:               testKey,
		DataDir:           dataDir,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		PollInterval:      20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(func() { hs.Close(); c.Shutdown() })
	for i, w := range workers {
		c.register(fmt.Sprintf("w%d", i+1), w.http.URL)
	}
	return c, hs
}

// keepAlive heartbeats the named workers every 50ms until the returned
// stop function runs (or the test ends).
func keepAlive(t *testing.T, c *Coordinator, names ...string) (stop func(name string)) {
	t.Helper()
	var mu sync.Mutex
	alive := map[string]bool{}
	for _, n := range names {
		alive[n] = true
	}
	done := make(chan struct{})
	t.Cleanup(func() {
		select {
		case <-done:
		default:
			close(done)
		}
	})
	go func() {
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				mu.Lock()
				for _, n := range names {
					if alive[n] {
						c.heartbeat(n)
					}
				}
				mu.Unlock()
			}
		}
	}()
	return func(name string) {
		mu.Lock()
		alive[name] = false
		mu.Unlock()
	}
}

func submitDispatch(t *testing.T, baseURL string, spec server.JobSpec) DispatchView {
	t.Helper()
	raw, _ := json.Marshal(spec)
	resp, err := http.Post(baseURL+"/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var view DispatchView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", resp.StatusCode, view)
	}
	return view
}

func getDispatch(t *testing.T, baseURL, id string) DispatchView {
	t.Helper()
	resp, err := http.Get(baseURL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("get dispatch: %v", err)
	}
	defer resp.Body.Close()
	var view DispatchView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decoding dispatch: %v", err)
	}
	return view
}

func waitDispatch(t *testing.T, baseURL, id string, timeout time.Duration) DispatchView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		view := getDispatch(t, baseURL, id)
		switch view.Status {
		case StatusDone:
			return view
		case StatusFailed:
			t.Fatalf("dispatch %s failed: %s", id, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatch %s still %s after %v: %+v", id, view.Status, timeout, view)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func clusterMetrics(t *testing.T, baseURL string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	return m
}

// TestClusterSweepFanoutBitIdentical is the tentpole invariant: a sweep
// fanned across 3 workers as replica slices merges to the bit-identical
// curve and fingerprint of a single-node run.
func TestClusterSweepFanoutBitIdentical(t *testing.T) {
	spec := server.JobSpec{
		Kind: "sweep", Algorithm: "cholesky", Scheduler: "quark",
		NB: 8, MaxNT: 5, Reps: 6, Workers: 4, Seed: 42,
	}

	// Ground truth: the same spec on one standalone node.
	ref := runSingleNode(t, spec)
	if ref.Fingerprint == "" {
		t.Fatal("reference sweep produced no fingerprint")
	}

	w1, w2, w3 := newTestWorker(t, ""), newTestWorker(t, ""), newTestWorker(t, "")
	c, hs := newTestCoordinator(t, "", w1, w2, w3)
	keepAlive(t, c, "w1", "w2", "w3")

	view := submitDispatch(t, hs.URL, spec)
	if len(view.Parts) != 3 {
		t.Fatalf("sweep sliced into %d parts, want 3", len(view.Parts))
	}
	final := waitDispatch(t, hs.URL, view.ID, 60*time.Second)

	workersSeen := map[string]bool{}
	for _, p := range final.Parts {
		workersSeen[p.Worker] = true
	}
	if len(workersSeen) != 3 {
		t.Fatalf("parts ran on %d distinct workers, want 3: %+v", len(workersSeen), final.Parts)
	}
	if final.Result == nil {
		t.Fatal("no merged result")
	}
	if final.Result.Fingerprint != ref.Fingerprint {
		t.Fatalf("fanned-out fingerprint %s != single-node %s", final.Result.Fingerprint, ref.Fingerprint)
	}
	if len(final.Result.Sweep) != len(ref.Sweep) {
		t.Fatalf("curve length %d != %d", len(final.Result.Sweep), len(ref.Sweep))
	}
	for i := range ref.Sweep {
		for r, m := range ref.Sweep[i].Makespans {
			if final.Result.Sweep[i].Makespans[r] != m {
				t.Fatalf("nt=%d rep %d: merged %v != reference %v", ref.Sweep[i].NT, r, final.Result.Sweep[i].Makespans[r], m)
			}
		}
		if final.Result.Sweep[i].MinMakespan != ref.Sweep[i].MinMakespan ||
			final.Result.Sweep[i].MeanMakespan != ref.Sweep[i].MeanMakespan {
			t.Fatalf("nt=%d aggregates diverge", ref.Sweep[i].NT)
		}
	}
}

// runSingleNode runs spec to completion on a fresh standalone server.
func runSingleNode(t *testing.T, spec server.JobSpec) *server.JobResult {
	t.Helper()
	srv, err := server.New(server.Config{Pool: 2})
	if err != nil {
		t.Fatalf("reference server: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}()
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		switch job.Status() {
		case server.StatusDone:
			v, _ := srv.Job(job.ID)
			return v.View().Result
		case server.StatusFailed, server.StatusDead:
			t.Fatalf("reference job %s", job.Status())
		}
		if time.Now().After(deadline) {
			t.Fatalf("reference job still %s", job.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterCacheRouting pins consistent-hash routing: repeats of a
// cacheable spec land on the same worker and only the first captures.
func TestClusterCacheRouting(t *testing.T) {
	w1, w2 := newTestWorker(t, ""), newTestWorker(t, "")
	c, hs := newTestCoordinator(t, "", w1, w2)
	keepAlive(t, c, "w1", "w2")

	spec := server.JobSpec{Algorithm: "cholesky", NT: 4, NB: 8, Reps: 2, Seed: 7}
	first := waitDispatch(t, hs.URL, submitDispatch(t, hs.URL, spec).ID, 30*time.Second)
	second := waitDispatch(t, hs.URL, submitDispatch(t, hs.URL, spec).ID, 30*time.Second)

	if first.Parts[0].Worker != second.Parts[0].Worker {
		t.Fatalf("repeat routed to %s, first to %s", second.Parts[0].Worker, first.Parts[0].Worker)
	}
	if first.Result.Fingerprint != second.Result.Fingerprint {
		t.Fatalf("repeat fingerprint %s != %s", second.Result.Fingerprint, first.Result.Fingerprint)
	}
	m := clusterMetrics(t, hs.URL)
	if m.Cache.Captures != 1 {
		t.Fatalf("cluster-wide captures = %d after a repeat, want 1", m.Cache.Captures)
	}
	if m.Cache.Hits < 1 {
		t.Fatalf("cluster-wide hits = %d, want >= 1", m.Cache.Hits)
	}
}

// findNTOwnedBy searches for a tile count whose route key lands on the
// wanted owner under the given ring membership — mirroring the ring the
// coordinator builds for the same worker names.
func findNTOwnedBy(t *testing.T, members []string, want string, spec server.JobSpec) server.JobSpec {
	t.Helper()
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	for nt := 2; nt <= 40; nt++ {
		s := spec
		s.NT = nt
		if err := s.Validate(); err != nil {
			t.Fatalf("validate nt=%d: %v", nt, err)
		}
		if owner, _ := r.Owner(s.RouteKey()); owner == want {
			return s
		}
	}
	t.Fatalf("no nt in [2,40] owned by %s on ring %v", want, members)
	return spec
}

// TestClusterPeerFrameFetch pins frame shipping: when a ring change moves
// a key to a worker that never captured it, the new owner fetches the
// .dag frame from the previous owner instead of re-capturing.
func TestClusterPeerFrameFetch(t *testing.T) {
	w1 := newTestWorker(t, "")
	c, hs := newTestCoordinator(t, "", w1)
	keepAlive(t, c, "w1", "w2")

	// A spec that w2 will own once it joins the ring.
	spec := findNTOwnedBy(t, []string{"w1", "w2"}, "w2",
		server.JobSpec{Algorithm: "cholesky", NB: 8, Reps: 1, Seed: 11})

	// Captured on w1 while it is the only worker.
	first := waitDispatch(t, hs.URL, submitDispatch(t, hs.URL, spec).ID, 30*time.Second)
	if got := first.Parts[0].Worker; got != "w1" {
		t.Fatalf("first run on %s, want w1", got)
	}

	// w2 joins; the key's owner moves; the repeat must be served from a
	// peer-fetched frame, not a new capture.
	w2 := newTestWorker(t, "")
	c.register("w2", w2.http.URL)

	second := waitDispatch(t, hs.URL, submitDispatch(t, hs.URL, spec).ID, 30*time.Second)
	if got := second.Parts[0].Worker; got != "w2" {
		t.Fatalf("repeat routed to %s, want w2 after ring change", got)
	}
	if second.Result.Fingerprint != first.Result.Fingerprint {
		t.Fatalf("peer-served fingerprint %s != original %s", second.Result.Fingerprint, first.Result.Fingerprint)
	}
	m := clusterMetrics(t, hs.URL)
	if m.Cache.Captures != 1 {
		t.Fatalf("cluster-wide captures = %d after frame fetch, want 1", m.Cache.Captures)
	}
	if m.Cache.PeerHits != 1 {
		t.Fatalf("peer hits = %d, want 1", m.Cache.PeerHits)
	}
	if m.Cache.FramesServed != 1 {
		t.Fatalf("frames served = %d, want 1", m.Cache.FramesServed)
	}
}

// TestClusterWorkerRestartServesDiskFrame pins the durable half of the
// routing story: a restarted worker serves a repeat of its routed key
// from the persisted .dag frame — zero captures in the new process.
func TestClusterWorkerRestartServesDiskFrame(t *testing.T) {
	dir := t.TempDir()
	w1 := newTestWorker(t, dir)
	c, hs := newTestCoordinator(t, "", w1)
	keepAlive(t, c, "w1")

	spec := server.JobSpec{Algorithm: "qr", NT: 4, NB: 8, Reps: 1, Seed: 3}
	first := waitDispatch(t, hs.URL, submitDispatch(t, hs.URL, spec).ID, 30*time.Second)

	// Restart: new process, same data dir, same worker name.
	w1.stop()
	w1b := newTestWorker(t, dir)
	c.register("w1", w1b.http.URL)

	second := waitDispatch(t, hs.URL, submitDispatch(t, hs.URL, spec).ID, 30*time.Second)
	if second.Result.Fingerprint != first.Result.Fingerprint {
		t.Fatalf("post-restart fingerprint %s != original %s", second.Result.Fingerprint, first.Result.Fingerprint)
	}
	m := clusterMetrics(t, hs.URL)
	if m.Cache.Captures != 0 {
		t.Fatalf("captures = %d in the restarted process, want 0 (disk frame)", m.Cache.Captures)
	}
	if m.Cache.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", m.Cache.DiskHits)
	}
}

// fakeWorker is a scripted worker: it accepts any job and serves a
// controllable job view — the instrument for failover and dedupe tests.
type fakeWorker struct {
	http *httptest.Server

	mu   sync.Mutex
	view server.JobView // guarded-by: mu
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	f := &fakeWorker{}
	f.view = server.JobView{ID: "fake-1", Status: server.StatusRunning}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		v := f.view
		f.mu.Unlock()
		v.Status = server.StatusQueued
		writeJSON(w, http.StatusAccepted, v)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		v := f.view
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, server.MetricsSnapshot{})
	})
	f.http = httptest.NewServer(mux)
	t.Cleanup(f.http.Close)
	return f
}

func (f *fakeWorker) complete(res *server.JobResult) {
	f.mu.Lock()
	f.view.Status = server.StatusDone
	f.view.Result = res
	f.mu.Unlock()
}

// TestClusterFailoverRedispatchDedupe pins the failover story end to end:
// a worker that stops heartbeating is declared dead, its accepted job is
// re-dispatched onto the ring and completes with the identical
// fingerprint; when the "dead" worker later reports its own completion,
// the duplicate is recognized by fingerprint and dropped, not
// double-counted.
func TestClusterFailoverRedispatchDedupe(t *testing.T) {
	w1 := newTestWorker(t, "")
	fake := newFakeWorker(t)

	c, hs := newTestCoordinator(t, "", w1)
	c.register("w2", fake.http.URL)
	stop := keepAlive(t, c, "w1", "w2")

	// Route the job to the fake (w2) so its death exercises failover.
	spec := findNTOwnedBy(t, []string{"w1", "w2"}, "w2",
		server.JobSpec{Algorithm: "cholesky", NB: 8, Reps: 1, Seed: 23})
	view := submitDispatch(t, hs.URL, spec)

	// Wait until the fake has accepted the part.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := getDispatch(t, hs.URL, view.ID)
		if len(v.Parts) == 1 && v.Parts[0].Worker == "w2" && v.Parts[0].JobID != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("part never accepted by w2: %+v", v)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Silence w2: heartbeats stop, the server stays up (partition, not
	// crash). The coordinator must declare it dead and re-dispatch to w1.
	stop("w2")
	final := waitDispatch(t, hs.URL, view.ID, 30*time.Second)
	if got := final.Parts[0].Worker; got != "w1" {
		t.Fatalf("failover re-dispatched to %s, want w1", got)
	}
	if final.Parts[0].Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (failover)", final.Parts[0].Attempts)
	}
	if c.failovers.Load() == 0 {
		t.Fatal("failover counter never incremented")
	}
	ref := runSingleNode(t, spec)
	if final.Result.Fingerprint != ref.Fingerprint {
		t.Fatalf("re-dispatched fingerprint %s != single-node %s", final.Result.Fingerprint, ref.Fingerprint)
	}

	// The partitioned worker finally "completes" its copy with the same
	// deterministic result. The tracker must observe it and dedupe by
	// fingerprint.
	fake.complete(final.Result)
	deadline = time.Now().Add(10 * time.Second)
	for c.deduped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("duplicate completion never deduped (mismatches=%d)", c.mismatches.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.mismatches.Load() != 0 {
		t.Fatalf("fingerprint mismatches = %d, want 0", c.mismatches.Load())
	}
}

// TestClusterMetricsAggregation checks the /metrics merge: job counts and
// latency observations from several workers sum into one document.
func TestClusterMetricsAggregation(t *testing.T) {
	w1, w2 := newTestWorker(t, ""), newTestWorker(t, "")
	c, hs := newTestCoordinator(t, "", w1, w2)
	keepAlive(t, c, "w1", "w2")

	// Two distinct cacheable jobs — likely split across workers, but the
	// aggregation must hold either way.
	for _, nt := range []int{3, 5} {
		spec := server.JobSpec{Algorithm: "cholesky", NT: nt, NB: 8, Reps: 1, Seed: 9}
		waitDispatch(t, hs.URL, submitDispatch(t, hs.URL, spec).ID, 30*time.Second)
	}
	m := clusterMetrics(t, hs.URL)
	if m.Jobs.Done != 2 {
		t.Fatalf("aggregated done = %d, want 2", m.Jobs.Done)
	}
	if m.Cache.Captures != 2 {
		t.Fatalf("aggregated captures = %d, want 2", m.Cache.Captures)
	}
	if m.Run.Count != 2 {
		t.Fatalf("aggregated run count = %d, want 2", m.Run.Count)
	}
	if m.Run.MeanMS <= 0 || m.Run.P95MS < m.Run.P50MS {
		t.Fatalf("merged run latency implausible: %+v", m.Run)
	}
	if m.Live != 2 {
		t.Fatalf("live = %d, want 2", m.Live)
	}
}

// TestCoordinatorJournalRecovery checks that a restarted coordinator
// re-dispatches acknowledged-but-unfinished work from its journal.
func TestCoordinatorJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{Key: testKey, DataDir: dir, PollInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	// Accept a dispatch with no workers attached: journaled, never sent.
	id, err := c1.submit(server.JobSpec{Algorithm: "cholesky", NT: 4, NB: 8}, [2]string{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	c1.Shutdown()

	w1 := newTestWorker(t, "")
	c2, hs := newTestCoordinator(t, dir, w1)
	keepAlive(t, c2, "w1")
	final := waitDispatch(t, hs.URL, id, 30*time.Second)
	if !final.Recovered {
		t.Fatal("recovered dispatch not flagged")
	}
	if final.Result == nil || final.Result.Fingerprint == "" {
		t.Fatal("recovered dispatch produced no result")
	}
}
