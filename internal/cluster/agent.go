package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"supersim/internal/rng"
)

// Agent is the worker-side cluster client: it registers a simd instance
// with the coordinator and keeps it live with jittered heartbeats. Run it
// in its own goroutine alongside the worker's HTTP server.
type Agent struct {
	// Coordinator is the coordinator's base URL; Key the shared cluster
	// secret; Name this worker's unique name; URL the base URL peers and
	// the coordinator reach this worker at.
	Coordinator string
	Key         string
	Name        string
	URL         string
	// Interval overrides the coordinator-advertised heartbeat cadence
	// (tests); 0 uses the advertised value.
	Interval time.Duration
	// Client is the HTTP client (default: 10s timeout).
	Client *http.Client

	jitter *rng.Source
}

// jitterDelay is the agent's anti-thundering-herd: each heartbeat waits
// base scaled by a uniform factor in [0.5, 1.5) drawn from the agent's
// own stream, so a fleet of workers started together (or reconnecting
// together after a coordinator restart) never settles into firing in the
// same instant — the same reasoning as the server's jittered Retry-After
// hints and retry backoff.
func (a *Agent) jitterDelay(base time.Duration) time.Duration {
	if a.jitter == nil {
		// Seeded from the worker's name: deterministic per worker (a
		// restart replays the same schedule — fine, it is still decorrelated
		// from every other worker), distinct across workers.
		a.jitter = rng.New(fnv64("agent:" + a.Name))
	}
	return time.Duration(float64(base) * (0.5 + a.jitter.Float64()))
}

// Run registers and heartbeats until ctx is cancelled. Registration
// failures retry on the heartbeat cadence; a 404 heartbeat (restarted
// coordinator) falls back to re-registration. Returns ctx.Err() on
// cancellation — the only way out.
func (a *Agent) Run(ctx context.Context) error {
	if a.Client == nil {
		a.Client = &http.Client{Timeout: 10 * time.Second}
	}
	base := a.Interval
	if base <= 0 {
		base = 2 * time.Second
	}
	registered := false
	for {
		if !registered {
			if adv, err := a.register(ctx); err == nil {
				registered = true
				if a.Interval <= 0 && adv > 0 {
					base = adv
				}
			}
		} else if err := a.beat(ctx); err != nil {
			var se statusErr
			if errors.As(err, &se) && se.code == http.StatusNotFound {
				registered = false // coordinator forgot us; re-register
			}
			// Other errors (coordinator briefly down) just retry on cadence.
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(a.jitterDelay(base)):
		}
	}
}

// statusErr carries a non-2xx response code.
type statusErr struct{ code int }

func (e statusErr) Error() string { return fmt.Sprintf("cluster: coordinator returned %d", e.code) }

func (a *Agent) post(ctx context.Context, path string, body any, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.Coordinator+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Cluster-Key", a.Key)
	resp, err := a.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return statusErr{code: resp.StatusCode}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// register announces the worker; returns the coordinator-advertised
// heartbeat interval.
func (a *Agent) register(ctx context.Context) (time.Duration, error) {
	var resp RegisterResponse
	if err := a.post(ctx, "/cluster/register", RegisterRequest{Name: a.Name, URL: a.URL}, &resp); err != nil {
		return 0, err
	}
	return time.Duration(resp.HeartbeatMS) * time.Millisecond, nil
}

func (a *Agent) beat(ctx context.Context) error {
	return a.post(ctx, "/cluster/heartbeat", HeartbeatRequest{Name: a.Name}, nil)
}
