package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"supersim/internal/journal"
	"supersim/internal/server"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Key is the cluster's shared secret (required). Workers must be
	// started with the same key (-cluster-key): it authenticates
	// register/heartbeat traffic, the coordinator's job submissions to
	// workers, and the peer frame endpoint.
	Key string
	// DataDir, when set, journals accepted dispatches under
	// <DataDir>/cluster/ so a restarted coordinator re-dispatches
	// acknowledged-but-unfinished work (specs only — results and client
	// credentials are not journaled; recovered dispatches resubmit under
	// the workers' anonymous tenant).
	DataDir string
	// HeartbeatInterval is the base heartbeat cadence advertised to
	// workers (they jitter it ×[0.5,1.5); default 2s).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a worker may go silent before it is
	// declared dead, removed from the ring, and its unfinished dispatches
	// re-routed (default 4× HeartbeatInterval).
	HeartbeatTimeout time.Duration
	// PollInterval is the tracker cadence: dispatch sends, job polls and
	// death detection all run on this clock (default 250ms).
	PollInterval time.Duration
	// Client is the HTTP client for worker traffic (default: 30s timeout).
	Client *http.Client
}

func (c *Config) fill() error {
	if c.Key == "" {
		return fmt.Errorf("cluster: coordinator requires a shared key")
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 4 * c.HeartbeatInterval
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return nil
}

// worker is one registered simd instance. All fields after name/url are
// guarded by the owning Coordinator's mu (cross-struct lock).
type worker struct {
	name string
	url  string

	lastBeat time.Time // guarded by Coordinator.mu
	live     bool      // guarded by Coordinator.mu
}

// Part statuses.
const (
	partPending = "pending" // not yet accepted by a worker
	partSent    = "sent"    // accepted (worker returned 202); being polled
	partDone    = "done"
	partFailed  = "failed"
)

// attempt is one (worker, worker-job) incarnation of a part. Failover
// creates a new attempt; prior attempts keep being polled so a
// falsely-declared-dead worker's completion is recognized and deduplicated
// by fingerprint instead of double-counted.
type attempt struct {
	Worker string `json:"worker"`
	JobID  string `json:"job_id,omitempty"`
	view   *server.JobView // guarded by Coordinator.mu — last poll
	// settled marks the attempt resolved (terminal status seen, job gone,
	// or abandoned on a dead worker): the tracker stops polling it. An
	// unsettled attempt keeps being polled even after its dispatch
	// finishes, so a duplicate completion is observed and deduplicated
	// instead of silently ignored.
	settled bool // guarded by Coordinator.mu
}

// part is one worker-sized slice of a dispatch: the whole job, or one
// replica slice (RepOffset/RepStride) of a fanned-out sweep. All fields
// are guarded by the owning Coordinator's mu.
type part struct {
	repOffset, repStride int
	attempts             []*attempt // guarded by Coordinator.mu — last is current
	status               string     // guarded by Coordinator.mu
	result               *server.JobResult
}

func (p *part) current() *attempt { return p.attempts[len(p.attempts)-1] }

// Dispatch statuses (client-visible).
const (
	StatusQueued  = "queued" // accepted; at least one part not yet on a worker
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// dispatch is one client job accepted by the coordinator. All mutable
// fields are guarded by the owning Coordinator's mu.
type dispatch struct {
	id       string
	spec     server.JobSpec
	routeKey string    // "" for non-cacheable specs
	auth     [2]string // forwarded X-API-Key / Authorization values

	parts     []*part // guarded by Coordinator.mu
	status    string  // guarded by Coordinator.mu
	result    *server.JobResult
	errMsg    string // guarded by Coordinator.mu
	recovered bool   // re-dispatched by journal recovery
}

// Coordinator is the simcluster control plane: it registers workers,
// routes jobs onto the consistent-hash ring by capture key, fans sweeps
// out as replica slices, ships frame-location hints, polls parts to
// completion, merges results, and fails work over off dead workers.
type Coordinator struct {
	cfg Config
	jl  *journal.Journal // nil without DataDir
	mux *http.ServeMux

	mu          sync.Mutex
	workers     map[string]*worker   // guarded-by: mu
	ring        *Ring                // guarded-by: mu
	dispatches  map[string]*dispatch // guarded-by: mu
	order       []string             // guarded-by: mu — accept order
	routeOrigin map[string]string    // guarded-by: mu — route key → worker last known to hold its frame
	nextID      uint64               // guarded-by: mu

	dispatched atomic.Uint64 // parts sent to workers
	failovers  atomic.Uint64 // parts re-routed off a dead worker
	deduped    atomic.Uint64 // duplicate completions dropped by fingerprint
	mismatches atomic.Uint64 // duplicate completions whose fingerprints diverged

	start time.Time
	kick  chan struct{} // nudges the tracker out of its poll sleep
	quit  chan struct{}
	wg    sync.WaitGroup
}

// New constructs a Coordinator, recovers the dispatch journal when
// Config.DataDir is set, and starts the tracker loop.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		workers:     make(map[string]*worker),
		ring:        NewRing(0),
		dispatches:  make(map[string]*dispatch),
		routeOrigin: make(map[string]string),
		start:       time.Now(),
		kick:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
	}
	if cfg.DataDir != "" {
		if err := c.openJournal(cfg.DataDir); err != nil {
			return nil, err
		}
	}
	c.mux = c.routes()
	c.wg.Add(1)
	go c.track()
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Shutdown stops the tracker and closes the journal. In-flight worker
// jobs keep running on their workers; a restarted coordinator re-adopts
// journaled unfinished dispatches by re-dispatching them.
func (c *Coordinator) Shutdown() {
	close(c.quit)
	c.wg.Wait()
	if c.jl != nil {
		c.jl.Close()
	}
}

// register adds (or revives) a worker. Same-name re-registration updates
// the URL — the restart case.
func (c *Coordinator) register(name, url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil {
		w = &worker{name: name}
		c.workers[name] = w
	}
	w.url = url
	w.lastBeat = time.Now()
	w.live = true
	c.ring.Add(name)
	c.kickTracker()
}

// heartbeat records a worker's liveness proof; false means the worker is
// unknown (a restarted coordinator) and must re-register.
func (c *Coordinator) heartbeat(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil {
		return false
	}
	w.lastBeat = time.Now()
	if !w.live {
		// Rejoin after a missed-heartbeat death: back onto the ring.
		w.live = true
		c.ring.Add(name)
		c.kickTracker()
	}
	return true
}

func (c *Coordinator) kickTracker() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// liveWorkersLocked returns the live workers sorted by name.
// Caller holds c.mu. The sort keeps every placement decision derived from
// this list deterministic (and detmap-clean) regardless of map iteration
// order.
func (c *Coordinator) liveWorkersLocked() []*worker {
	out := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		if w.live {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// submit admits one client job: it validates the spec, slices it into
// parts, journals the acceptance (AppendSync — the 202 must not outrun
// the fsync), and leaves the parts for the tracker to place. Returns the
// dispatch ID.
func (c *Coordinator) submit(spec server.JobSpec, auth [2]string) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	if spec.RepStride > 1 {
		return "", fmt.Errorf("cluster: rep_stride is coordinator-internal; submit an unsliced sweep")
	}
	c.mu.Lock()
	c.nextID++
	d := &dispatch{
		id:     fmt.Sprintf("d-%06d", c.nextID),
		spec:   spec,
		auth:   auth,
		status: StatusQueued,
	}
	if spec.Cacheable() {
		d.routeKey = spec.RouteKey()
	}
	d.parts = c.sliceLocked(d)
	c.dispatches[d.id] = d
	c.order = append(c.order, d.id)
	c.mu.Unlock()

	if err := c.journalDispatch(d); err != nil {
		c.mu.Lock()
		delete(c.dispatches, d.id)
		c.order = c.order[:len(c.order)-1]
		c.mu.Unlock()
		return "", fmt.Errorf("cluster: journaling dispatch: %w", err)
	}
	c.kickTracker()
	return d.id, nil
}

// sliceLocked splits a dispatch into parts. A sweep with more than one
// replica fans out across the live workers as replica slices (stride =
// part count); everything else is a single part. Caller holds c.mu.
func (c *Coordinator) sliceLocked(d *dispatch) []*part {
	fan := 1
	if d.spec.Kind == "sweep" && d.spec.Reps > 1 {
		if live := len(c.liveWorkersLocked()); live > 1 {
			fan = live
			if fan > d.spec.Reps {
				fan = d.spec.Reps
			}
		}
	}
	parts := make([]*part, fan)
	for i := range parts {
		parts[i] = &part{
			repOffset: i, repStride: fan,
			status:   partPending,
			attempts: []*attempt{{}}, // current() must always resolve
		}
		if fan == 1 {
			parts[i].repStride = 0 // unsliced
		}
	}
	return parts
}

// placeLocked picks the worker for one part of a dispatch, or "" when no
// live worker exists. Cacheable jobs go to the ring owner of their route
// key, so repeats land where the frame already lives; fanned-out sweep
// slices round-robin across the live workers (slice i on worker i mod
// live — maximal spread); other non-cacheable jobs hash their dispatch
// identity onto the ring, spreading load without disturbing cache
// routing. Caller holds c.mu.
func (c *Coordinator) placeLocked(d *dispatch, idx int) string {
	if d.routeKey != "" {
		owner, ok := c.ring.Owner(d.routeKey)
		if !ok {
			return ""
		}
		return owner
	}
	if len(d.parts) > 1 {
		live := c.liveWorkersLocked()
		if len(live) == 0 {
			return ""
		}
		return live[idx%len(live)].name
	}
	owner, ok := c.ring.Owner(fmt.Sprintf("%s/%d", d.id, idx))
	if !ok {
		return ""
	}
	return owner
}

// frameHintLocked returns the URL of the worker last known to hold the
// dispatch's frame, when that is a different live worker than the
// assignee — the coordinator's routing hint that turns a ring change into
// a peer frame fetch instead of a re-capture. Caller holds c.mu.
func (c *Coordinator) frameHintLocked(d *dispatch, assignee string) string {
	if d.routeKey == "" {
		return ""
	}
	origin := c.routeOrigin[d.routeKey]
	if origin == "" || origin == assignee {
		return ""
	}
	w := c.workers[origin]
	if w == nil || !w.live {
		return ""
	}
	return w.url
}

// Snapshot types for the HTTP API.

// PartView is one part of a dispatch as served by the API.
type PartView struct {
	Worker    string `json:"worker,omitempty"`
	JobID     string `json:"job_id,omitempty"`
	Status    string `json:"status"`
	RepOffset int    `json:"rep_offset,omitempty"`
	RepStride int    `json:"rep_stride,omitempty"`
	Attempts  int    `json:"attempts"`
}

// DispatchView is the JSON representation of one coordinator job.
type DispatchView struct {
	ID        string            `json:"id"`
	Status    string            `json:"status"`
	Kind      string            `json:"kind"`
	Algorithm string            `json:"algorithm"`
	RouteKey  string            `json:"route_key,omitempty"`
	Recovered bool              `json:"recovered,omitempty"`
	Parts     []PartView        `json:"parts"`
	Error     string            `json:"error,omitempty"`
	Result    *server.JobResult `json:"result,omitempty"`
}

// dispatchView renders one dispatch for the API. Caller holds c.mu.
func (c *Coordinator) dispatchView(d *dispatch) DispatchView {
	v := DispatchView{
		ID:        d.id,
		Status:    d.status,
		Kind:      d.spec.Kind,
		Algorithm: d.spec.Algorithm,
		RouteKey:  d.routeKey,
		Recovered: d.recovered,
		Error:     d.errMsg,
		Result:    d.result,
	}
	for _, p := range d.parts {
		cur := p.current()
		v.Parts = append(v.Parts, PartView{
			Worker:    cur.Worker,
			JobID:     cur.JobID,
			Status:    p.status,
			RepOffset: p.repOffset,
			RepStride: p.repStride,
			Attempts:  len(p.attempts),
		})
	}
	return v
}

// WorkerStatus is one worker's row in /healthz and /metrics.
type WorkerStatus struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Live bool   `json:"live"`
	// SilentMS is how long ago the last heartbeat (or registration)
	// arrived.
	SilentMS int64 `json:"silent_ms"`
}

// workerStatuses snapshots the worker table sorted by name.
func (c *Coordinator) workerStatuses() []WorkerStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerStatus{
			Name: w.name, URL: w.url, Live: w.live,
			SilentMS: now.Sub(w.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- journal ---

// dispatchRecord is the journaled form of an accepted dispatch. Client
// credentials are deliberately absent: a recovered dispatch resubmits
// under the workers' anonymous tenant rather than persisting secrets.
type dispatchRecord struct {
	ID   string         `json:"id"`
	Spec server.JobSpec `json:"spec"`
}

// finishRecord marks a dispatch settled; Fingerprint records the merged
// result's identity so operators can audit exactly-once across restarts.
type finishRecord struct {
	ID          string `json:"id"`
	Status      string `json:"status"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// openJournal replays the dispatch journal into the coordinator's
// tables: finished dispatches are restored fingerprint-only, unfinished
// ones become pending parts the tracker re-dispatches once workers
// register.
//
//simlint:allow guarded — construction precedes publication: called from New before the tracker starts or the handler is served
func (c *Coordinator) openJournal(dataDir string) error {
	jl, rec, err := journal.Open(dataDir + "/cluster")
	if err != nil {
		return err
	}
	c.jl = jl
	finished := make(map[string]finishRecord)
	var ids []string
	specs := make(map[string]server.JobSpec)
	for _, r := range rec.Records {
		switch r.Type {
		case "dispatch":
			var dr dispatchRecord
			if json.Unmarshal(r.Data, &dr) == nil {
				if _, seen := specs[dr.ID]; !seen {
					ids = append(ids, dr.ID)
				}
				specs[dr.ID] = dr.Spec
			}
		case "finish":
			var fr finishRecord
			if json.Unmarshal(r.Data, &fr) == nil {
				finished[fr.ID] = fr
			}
		}
	}
	for _, id := range ids {
		spec := specs[id]
		d := &dispatch{id: id, spec: spec, recovered: true}
		if spec.Cacheable() {
			d.routeKey = spec.RouteKey()
		}
		if fr, ok := finished[id]; ok {
			// Settled before the restart: restore the verdict (results are
			// not journaled; the fingerprint is the audit trail).
			d.status = fr.Status
			d.parts = []*part{{status: partDone, attempts: []*attempt{{}}}}
			if fr.Fingerprint != "" {
				d.result = &server.JobResult{Fingerprint: fr.Fingerprint}
			}
		} else {
			// Acknowledged but unfinished: rebuild parts and let the tracker
			// re-dispatch once workers register. Sweeps re-slice on the
			// post-restart ring; the replica-seed invariant keeps the merged
			// result identical to any earlier slicing.
			d.status = StatusQueued
			d.parts = []*part{{status: partPending}}
		}
		for _, p := range d.parts {
			if len(p.attempts) == 0 {
				p.attempts = []*attempt{{}}
			}
		}
		c.dispatches[id] = d
		c.order = append(c.order, id)
		// Keep dispatch IDs monotone across restarts.
		var n uint64
		if _, err := fmt.Sscanf(id, "d-%d", &n); err == nil && n > c.nextID {
			c.nextID = n
		}
	}
	return nil
}

// journalDispatch persists an acceptance. Synchronous by contract: the
// caller only acks the client after this returns (the durable analyzer's
// happens-before edge).
func (c *Coordinator) journalDispatch(d *dispatch) error {
	if c.jl == nil {
		return nil
	}
	_, err := c.jl.AppendSync("dispatch", dispatchRecord{ID: d.id, Spec: d.spec})
	return err
}

// journalFinish records a settled dispatch (async: losing a finish record
// merely re-dispatches idempotent work after a crash).
func (c *Coordinator) journalFinish(d *dispatch) {
	if c.jl == nil {
		return
	}
	fp := ""
	if d.result != nil {
		fp = d.result.Fingerprint
	}
	_, _ = c.jl.Append("finish", finishRecord{ID: d.id, Status: d.status, Fingerprint: fp})
}

// --- HTTP plumbing shared with the tracker ---

// workerRequest issues one authenticated request to a worker, decoding a
// JSON response body into out (when non-nil). Returns the status code.
func (c *Coordinator) workerRequest(method, url string, body any, auth [2]string, hdr map[string]string, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Cluster-Key", c.cfg.Key)
	if auth[0] != "" {
		req.Header.Set("X-API-Key", auth[0])
	}
	if auth[1] != "" {
		req.Header.Set("Authorization", auth[1])
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
