package pq

import "testing"

// The two heap-update idioms the replay executor chooses between when a
// completing task hands its worker straight to a successor: replace the
// front in place (one sift-down) versus pop then push (two sifts).

const benchHeapSize = 1024

// benchKeys yields a deterministic pseudo-random key stream (xorshift64)
// so both benchmarks replace the front with the same value sequence.
func benchKeys(n int) []float64 {
	keys := make([]float64, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range keys {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		keys[i] = float64(x%1000) / 1000
	}
	return keys
}

func benchHeap() *Heap[float64] {
	h := NewWithCapacity(func(a, b float64) bool { return a < b }, benchHeapSize)
	for _, k := range benchKeys(benchHeapSize) {
		h.Push(k)
	}
	return h
}

func BenchmarkReplaceTop(b *testing.B) {
	h := benchHeap()
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, _ := h.Peek()
		h.ReplaceTop(top + keys[i%len(keys)])
	}
}

func BenchmarkPopPush(b *testing.B) {
	h := benchHeap()
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, _ := h.Pop()
		h.Push(top + keys[i%len(keys)])
	}
}
