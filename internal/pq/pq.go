// Package pq implements a small generic binary min-heap.
//
// It backs the simulator's Task Execution Queue (ordered by virtual
// completion time) and the schedulers' priority ready queues. Unlike
// container/heap it is generic, allocation-light and keeps the comparison
// function with the heap rather than on the element type.
package pq

// Heap is a binary min-heap ordered by the less function supplied at
// construction: the element x for which less(x, y) holds for every other
// element y is at the front.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewWithCapacity returns an empty heap with preallocated storage.
func NewWithCapacity[T any](less func(a, b T) bool, capacity int) *Heap[T] {
	return &Heap[T]{less: less, items: make([]T, 0, capacity)}
}

// Len returns the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap has no elements.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push inserts x.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum element without removing it.
// The second result is false if the heap is empty.
//
//simlint:hotpath
func (h *Heap[T]) Peek() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum element.
// The second result is false if the heap is empty.
//
//simlint:hotpath
func (h *Heap[T]) Pop() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release reference for GC
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top, true
}

// ReplaceTop replaces the minimum element with x and restores heap order
// with a single sift-down — the fused form of a Pop immediately followed
// by a Push, saving one full sift. The replay executor's Task Execution
// Queue uses it when a completing task immediately starts a successor on
// the same worker. On an empty heap it degenerates to Push.
//
//simlint:hotpath
func (h *Heap[T]) ReplaceTop(x T) {
	if len(h.items) == 0 {
		//simlint:allow hotalloc — empty-heap fallback only; steady-state callers replace into a non-empty heap
		h.Push(x)
		return
	}
	h.items[0] = x
	h.down(0)
}

// Clear removes all elements, retaining capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// Items returns the backing slice in heap order (not sorted order).
// The caller must not modify it. Intended for inspection and testing.
func (h *Heap[T]) Items() []T { return h.items }

//simlint:hotpath
func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//simlint:hotpath
func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
