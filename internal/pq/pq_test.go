package pq

import (
	"sort"
	"testing"
	"testing/quick"
)

func intHeap() *Heap[int] {
	return New(func(a, b int) bool { return a < b })
}

func TestEmptyHeap(t *testing.T) {
	h := intHeap()
	if !h.Empty() || h.Len() != 0 {
		t.Error("new heap not empty")
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap returned ok")
	}
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap returned ok")
	}
}

func TestPushPopOrdered(t *testing.T) {
	h := intHeap()
	for _, v := range []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0} {
		h.Push(v)
	}
	for want := 0; want < 10; want++ {
		got, ok := h.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if !h.Empty() {
		t.Error("heap not empty after draining")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	h := intHeap()
	h.Push(2)
	h.Push(1)
	if v, _ := h.Peek(); v != 1 {
		t.Errorf("Peek = %d, want 1", v)
	}
	if h.Len() != 2 {
		t.Errorf("Peek removed an element")
	}
}

func TestDuplicates(t *testing.T) {
	h := intHeap()
	for i := 0; i < 5; i++ {
		h.Push(7)
	}
	h.Push(3)
	if v, _ := h.Pop(); v != 3 {
		t.Errorf("first pop = %d, want 3", v)
	}
	for i := 0; i < 5; i++ {
		if v, _ := h.Pop(); v != 7 {
			t.Fatalf("pop = %d, want 7", v)
		}
	}
}

func TestClearRetainsUsability(t *testing.T) {
	h := intHeap()
	h.Push(1)
	h.Push(2)
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("Clear left elements")
	}
	h.Push(9)
	if v, _ := h.Pop(); v != 9 {
		t.Error("heap unusable after Clear")
	}
}

func TestNewWithCapacity(t *testing.T) {
	h := NewWithCapacity(func(a, b int) bool { return a < b }, 64)
	for i := 63; i >= 0; i-- {
		h.Push(i)
	}
	for i := 0; i < 64; i++ {
		if v, _ := h.Pop(); v != i {
			t.Fatalf("pop = %d, want %d", v, i)
		}
	}
}

// Property: popping everything yields the sorted input, for arbitrary
// inputs (testing/quick).
func TestHeapSortProperty(t *testing.T) {
	err := quick.Check(func(xs []int) bool {
		h := intHeap()
		for _, v := range xs {
			h.Push(v)
		}
		out := make([]int, 0, len(xs))
		for {
			v, ok := h.Pop()
			if !ok {
				break
			}
			out = append(out, v)
		}
		if len(out) != len(xs) {
			return false
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// Property: interleaved pushes and pops never violate the min property.
func TestInterleavedMinProperty(t *testing.T) {
	err := quick.Check(func(ops []int16) bool {
		h := intHeap()
		var min *int
		_ = min
		for _, op := range ops {
			if op >= 0 {
				h.Push(int(op))
			} else if !h.Empty() {
				top, _ := h.Peek()
				v, _ := h.Pop()
				if v != top {
					return false
				}
				// Every remaining element must be >= v.
				for _, rest := range h.Items() {
					if rest < v {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestReplaceTopEmpty(t *testing.T) {
	h := intHeap()
	h.ReplaceTop(5)
	if v, ok := h.Pop(); !ok || v != 5 {
		t.Errorf("ReplaceTop on empty heap: Pop = %d,%v want 5,true", v, ok)
	}
}

// Property: ReplaceTop is observationally identical to Pop followed by
// Push, for arbitrary operation sequences.
func TestReplaceTopEquivalentToPopPush(t *testing.T) {
	err := quick.Check(func(init []int, replacements []int) bool {
		a, b := intHeap(), intHeap()
		for _, v := range init {
			a.Push(v)
			b.Push(v)
		}
		for _, v := range replacements {
			a.ReplaceTop(v)
			b.Pop()
			b.Push(v)
		}
		if a.Len() != b.Len() {
			return false
		}
		for !a.Empty() {
			x, _ := a.Pop()
			y, _ := b.Pop()
			if x != y {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestStructElements(t *testing.T) {
	type entry struct {
		end float64
		seq int
	}
	h := New(func(a, b entry) bool {
		if a.end != b.end {
			return a.end < b.end
		}
		return a.seq < b.seq
	})
	h.Push(entry{2.0, 1})
	h.Push(entry{1.0, 2})
	h.Push(entry{1.0, 0})
	want := []entry{{1.0, 0}, {1.0, 2}, {2.0, 1}}
	for i, w := range want {
		got, _ := h.Pop()
		if got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}
