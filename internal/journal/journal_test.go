package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func mustOpen(t *testing.T, dir string) (*Journal, Recovered) {
	t.Helper()
	j, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j, rec
}

// TestAppendReopenRoundTrip appends a mix of synced and unsynced records,
// closes cleanly, and checks that reopen returns them in order with
// monotonically increasing sequence numbers.
func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, dir)
	if rec.State != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh journal recovered %d records, state=%q", len(rec.Records), rec.State)
	}
	for i := 0; i < 10; i++ {
		var err error
		if i%2 == 0 {
			_, err = j.AppendSync("even", payload{N: i})
		} else {
			_, err = j.Append("odd", payload{N: i})
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := j.LogRecords(); got != 10 {
		t.Fatalf("LogRecords=%d, want 10", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec.Records))
	}
	var lastSeq uint64
	for i, r := range rec.Records {
		if r.Seq <= lastSeq {
			t.Fatalf("record %d seq %d not increasing (prev %d)", i, r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		var p payload
		if err := json.Unmarshal(r.Data, &p); err != nil {
			t.Fatalf("record %d payload: %v", i, err)
		}
		if p.N != i {
			t.Fatalf("record %d payload N=%d", i, p.N)
		}
		want := "even"
		if i%2 == 1 {
			want = "odd"
		}
		if r.Type != want {
			t.Fatalf("record %d type %q, want %q", i, r.Type, want)
		}
	}
	// New appends continue the sequence.
	r, err := j2.AppendSync("more", payload{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != lastSeq+1 {
		t.Fatalf("post-reopen seq %d, want %d", r.Seq, lastSeq+1)
	}
}

// TestTornTailTruncated simulates a SIGKILL landing mid-write: a partial
// final line must be dropped on Open without losing any complete record,
// and the truncated log must accept clean appends afterwards.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := j.AppendSync("rec", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, "log.jsonl")
	for _, tear := range []string{
		`{"crc":123,"rec":{"seq":`,          // torn mid-line
		`{"crc":1,"rec":{"seq":6,"type":""}}` + "\n", // complete line, wrong CRC
		"garbage\n",                         // not JSON at all
	} {
		f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tear); err != nil {
			t.Fatal(err)
		}
		f.Close()

		j2, rec, err := Open(dir)
		if err != nil {
			t.Fatalf("Open with torn tail %q: %v", tear, err)
		}
		if len(rec.Records) != 5 {
			t.Fatalf("tail %q: recovered %d records, want 5", tear, len(rec.Records))
		}
		if rec.TruncatedBytes != len(tear) {
			t.Fatalf("tail %q: truncated %d bytes, want %d", tear, rec.TruncatedBytes, len(tear))
		}
		// The log is clean again: append and reopen see 6 records.
		if _, err := j2.AppendSync("after", payload{N: 5}); err != nil {
			t.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		j3, rec3 := mustOpen(t, dir)
		if len(rec3.Records) != 6 || rec3.TruncatedBytes != 0 {
			t.Fatalf("after repair: %d records, %d truncated", len(rec3.Records), rec3.TruncatedBytes)
		}
		// Restore the 5-record log for the next tear case.
		if err := j3.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		lines := 0
		cut := 0
		for i, b := range raw {
			if b == '\n' {
				lines++
				if lines == 5 {
					cut = i + 1
					break
				}
			}
		}
		if err := os.WriteFile(logPath, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactReplacesHistory compacts a state blob, checks the log resets,
// and verifies reopen returns the snapshot plus only post-snapshot records.
func TestCompactReplacesHistory(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	for i := 0; i < 8; i++ {
		if _, err := j.Append("pre", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(payload{N: 99, S: "state"}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := j.LogRecords(); got != 0 {
		t.Fatalf("LogRecords after compact = %d, want 0", got)
	}
	if got := j.Compactions(); got != 1 {
		t.Fatalf("Compactions=%d, want 1", got)
	}
	if _, err := j.AppendSync("post", payload{N: 100}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir)
	var st payload
	if err := json.Unmarshal(rec.State, &st); err != nil {
		t.Fatalf("snapshot state: %v", err)
	}
	if st.N != 99 || st.S != "state" {
		t.Fatalf("snapshot state %+v", st)
	}
	if len(rec.Records) != 1 || rec.Records[0].Type != "post" {
		t.Fatalf("post-snapshot records: %+v", rec.Records)
	}
}

// TestCrashBetweenSnapshotAndTruncate covers the one-crash-window in
// Compact: the snapshot is renamed into place but the old log survives.
// Open must not double-apply records the snapshot already covers.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	for i := 0; i < 4; i++ {
		if _, err := j.AppendSync("rec", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Save the pre-compaction log, compact, then restore the stale log —
	// exactly the state a crash between rename and truncate leaves behind.
	logPath := filepath.Join(dir, "log.jsonl")
	stale, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(payload{N: 4}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("stale pre-snapshot records leaked through: %+v", rec.Records)
	}
	if rec.State == nil {
		t.Fatal("snapshot state lost")
	}
	// The sequence counter continues past the snapshot's coverage.
	r, err := j2.Append("next", payload{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != 5 {
		t.Fatalf("seq after recovery = %d, want 5", r.Seq)
	}
}

// TestAppendAfterCloseFails pins the closed-journal contract.
func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append("x", payload{}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := j.Compact(payload{}); err == nil {
		t.Fatal("compact after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
