// Package journal implements the append-only, versioned record log that
// backs the simulation service's durable job store. A Journal is a
// directory holding two files:
//
//	log.jsonl     — one CRC-framed JSON record per line, appended in
//	                sequence order; fsynced on demand (AppendSync)
//	snapshot.json — the last compacted state plus the sequence number it
//	                covers, written atomically (tmp + rename)
//
// The caller appends typed records (Append/AppendSync) and periodically
// compacts them into an opaque state blob (Compact), which truncates the
// log. Open replays snapshot + log tail and hands both back; records whose
// sequence the snapshot already covers are skipped, so a crash between the
// snapshot rename and the log truncation recovers cleanly.
//
// Torn tails are expected: a SIGKILL can land mid-write, leaving a partial
// or CRC-corrupt final line. Open stops at the first bad line, truncates
// the log there, and reports how many bytes it dropped — every record
// whose append returned is still intact, because lines are written with a
// single write(2) and the durability-critical ones are fsynced before the
// caller acknowledges anything.
//
// A journal has a single writer (the daemon that owns the data dir); the
// package does no cross-process locking. It legitimately reads the wall
// clock (record timestamps for operators) and is registered as a
// wall-clock package with simlint (analysis.WallClockPackages).
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Version is the on-disk format version stamped into snapshots and
// validated on Open.
const Version = 1

const (
	logName      = "log.jsonl"
	snapshotName = "snapshot.json"
)

// Record is one journaled entry: an application-defined type tag plus an
// opaque payload, stamped with its sequence number and append time.
type Record struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	// TimeMS is the wall-clock append time (Unix milliseconds); purely
	// informational for operators, never used by recovery.
	TimeMS int64           `json:"t_ms,omitempty"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// envelope is one physical log line: the marshalled Record plus an IEEE
// CRC32 over exactly those bytes, so a torn or bit-rotted line is detected
// rather than half-parsed.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// snapshot is the on-disk form of a compacted state.
type snapshot struct {
	V     int             `json:"v"`
	Seq   uint64          `json:"seq"` // highest record sequence the state covers
	State json.RawMessage `json:"state"`
	CRC   uint32          `json:"crc"` // over the State bytes
}

// Recovered is what Open reconstructed from disk.
type Recovered struct {
	// State is the last compacted state blob (nil when never compacted).
	State json.RawMessage
	// Records are the log records appended after the snapshot, in order.
	Records []Record
	// TruncatedBytes is the size of the torn tail dropped from the log
	// (0 on a clean shutdown).
	TruncatedBytes int
}

// Journal is an open record log. Methods are safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	dir     string
	log     *os.File // guarded-by: mu
	seq     uint64   // guarded-by: mu — last assigned sequence
	logRecs int      // guarded-by: mu — records in the live log since compaction
	compact uint64   // guarded-by: mu — lifetime compaction count
	closed  bool     // guarded-by: mu
}

// Open creates dir if needed, replays the snapshot and the valid log
// prefix, truncates any torn tail, and returns the journal positioned for
// appending.
//
//simlint:allow guarded — construction precedes publication: the journal is not shared until Open returns
func Open(dir string) (*Journal, Recovered, error) {
	var rec Recovered
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("journal: creating %s: %w", dir, err)
	}

	snapSeq := uint64(0)
	if raw, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		var sn snapshot
		if err := json.Unmarshal(raw, &sn); err != nil {
			return nil, rec, fmt.Errorf("journal: corrupt snapshot: %w", err)
		}
		if sn.V != Version {
			return nil, rec, fmt.Errorf("journal: snapshot version %d, this build reads %d", sn.V, Version)
		}
		if crc32.ChecksumIEEE(sn.State) != sn.CRC {
			return nil, rec, fmt.Errorf("journal: snapshot CRC mismatch")
		}
		rec.State = sn.State
		snapSeq = sn.Seq
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, rec, fmt.Errorf("journal: reading snapshot: %w", err)
	}

	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("journal: opening log: %w", err)
	}
	raw, err := os.ReadFile(logPath)
	if err != nil {
		f.Close()
		return nil, rec, fmt.Errorf("journal: reading log: %w", err)
	}

	j := &Journal{dir: dir, log: f, seq: snapSeq}
	valid := 0 // byte offset of the end of the last good line
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // incomplete final line: torn tail
		}
		line := raw[off : off+nl]
		r, ok := decodeLine(line)
		if !ok {
			break // corrupt line: everything after is suspect
		}
		off += nl + 1
		valid = off
		if r.Seq <= snapSeq {
			continue // compacted away already (crash between rename and truncate)
		}
		rec.Records = append(rec.Records, r)
		j.logRecs++
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	rec.TruncatedBytes = len(raw) - valid
	if rec.TruncatedBytes > 0 {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, rec, fmt.Errorf("journal: seeking log end: %w", err)
	}
	return j, rec, nil
}

// decodeLine parses and CRC-verifies one log line.
func decodeLine(line []byte) (Record, bool) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, false
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return Record{}, false
	}
	var r Record
	if err := json.Unmarshal(env.Rec, &r); err != nil {
		return Record{}, false
	}
	return r, true
}

// Append writes one record to the log without forcing it to disk; use it
// for records whose loss is recoverable (a lost completion record just
// means the deterministic job re-runs). It returns the stamped record.
func (j *Journal) Append(typ string, data any) (Record, error) {
	return j.append(typ, data, false)
}

// AppendSync writes one record and fsyncs the log before returning: once
// it returns, the record survives SIGKILL. Use it for acknowledgements.
func (j *Journal) AppendSync(typ string, data any) (Record, error) {
	return j.append(typ, data, true)
}

func (j *Journal) append(typ string, data any, sync bool) (Record, error) {
	payload, err := json.Marshal(data)
	if err != nil {
		return Record{}, fmt.Errorf("journal: marshalling %s payload: %w", typ, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return Record{}, fmt.Errorf("journal: append %s after Close", typ)
	}
	j.seq++
	r := Record{
		Seq:    j.seq,
		Type:   typ,
		TimeMS: time.Now().UnixMilli(), //simlint:allow vclock — operator timestamp, never read by recovery
		Data:   payload,
	}
	body, err := json.Marshal(r)
	if err != nil {
		j.seq--
		return Record{}, fmt.Errorf("journal: marshalling record: %w", err)
	}
	line, err := json.Marshal(envelope{CRC: crc32.ChecksumIEEE(body), Rec: body})
	if err != nil {
		j.seq--
		return Record{}, fmt.Errorf("journal: framing record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.log.Write(line); err != nil {
		j.seq--
		return Record{}, fmt.Errorf("journal: appending %s: %w", typ, err)
	}
	j.logRecs++
	if sync {
		if err := j.log.Sync(); err != nil {
			return Record{}, fmt.Errorf("journal: fsync after %s: %w", typ, err)
		}
	}
	return r, nil
}

// Sync forces every appended record to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.log.Sync()
}

// WriteFileAtomic publishes data at path with full-file atomicity: the
// bytes are written to a same-directory temp file, fsynced, and renamed
// over path. A reader (or a crash) observes either the old file or the
// complete new one, never a torn mix — the invariant every durable
// artifact beside the journal (capture-cache frames, cron baselines)
// must uphold, and the one simlint's durable analyzer enforces for
// writes under a data dir.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return fmt.Errorf("journal: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: fsyncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: publishing %s: %w", path, err)
	}
	return nil
}

// Compact atomically replaces the record history with state: the snapshot
// is written via WriteFileAtomic (temp + fsync + rename over
// snapshot.json), and the log is truncated. A crash at any point recovers
// either the old history or the new snapshot, never a mix.
func (j *Journal) Compact(state any) error {
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("journal: marshalling snapshot state: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: Compact after Close")
	}
	sn, err := json.Marshal(snapshot{V: Version, Seq: j.seq, State: raw, CRC: crc32.ChecksumIEEE(raw)})
	if err != nil {
		return fmt.Errorf("journal: marshalling snapshot: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(j.dir, snapshotName), sn, 0o644); err != nil {
		return err
	}
	// The snapshot now covers every appended record; drop the log. A crash
	// before the truncate is fine: Open skips records with seq <= snapshot.
	if err := j.log.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncating log after snapshot: %w", err)
	}
	if _, err := j.log.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: rewinding log: %w", err)
	}
	j.logRecs = 0
	j.compact++
	return nil
}

// LogRecords returns the number of records in the live log (appended since
// the last compaction) — the caller's compaction trigger.
func (j *Journal) LogRecords() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.logRecs
}

// Seq returns the last assigned record sequence number.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Compactions returns the lifetime compaction count.
func (j *Journal) Compactions() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compact
}

// Close syncs and closes the log. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.log.Sync()
	closeErr := j.log.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: final sync: %w", syncErr)
	}
	return closeErr
}
