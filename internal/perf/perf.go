// Package perf provides lightweight contention and hot-path counters for
// the simulation library and the runtime engine.
//
// The paper's headline performance claim (Section VII) is that the
// simulation is itself parallel and can outrun the real execution; whether
// that holds in practice is decided on the hot paths — how often workers
// are woken for nothing, how often the Task Execution Queue front has to
// park for scheduler bookkeeping, and how long the global locks are held.
// Counters makes those quantities observable with plain atomic increments
// so the instrumented paths stay race-free and cheap; a nil *Counters
// disables collection entirely (every call site guards on nil).
package perf

import (
	"fmt"
	"strings"
	"sync/atomic"

	"supersim/internal/stopwatch"
)

// Counters aggregates hot-path events. All fields are atomics: producers
// (workers, the master, the simulator) increment concurrently without
// locks, and Snapshot reads a consistent-enough point-in-time view for
// reporting. The zero value is ready to use.
type Counters struct {
	// TargetedWakeups counts single-worker signals issued when a task
	// became ready (the replacement for the engine's old thundering-herd
	// broadcast).
	TargetedWakeups atomic.Uint64
	// CollectiveWakeups counts wake-everyone events (gang formation,
	// barrier entry, shutdown, abort, dead-core remaps) — the paths where
	// a broadcast is still the correct tool.
	CollectiveWakeups atomic.Uint64
	// SpuriousWakeups counts times a parked worker was woken and found no
	// claimable work. Persistent growth means wakeups are mistargeted.
	SpuriousWakeups atomic.Uint64

	// FrontHandoffs counts Task Execution Queue front-of-queue handoff
	// signals (a completing task waking exactly the new front entry).
	FrontHandoffs atomic.Uint64
	// FrontParks counts tasks that parked waiting to reach the queue
	// front (as opposed to arriving at an empty queue and proceeding).
	FrontParks atomic.Uint64
	// QuiescenceParks counts front tasks that parked on the runtime's
	// bookkeeping condvar instead of spinning (WaitQuiescence policy).
	QuiescenceParks atomic.Uint64
	// QuiescenceSpins counts fallback unlock-yield-relock spins for
	// runtimes that expose no parking facility.
	QuiescenceSpins atomic.Uint64
	// QuiescenceKicks counts engine state transitions that woke at least
	// one parked quiescence waiter.
	QuiescenceKicks atomic.Uint64

	// TasksExecuted counts completed Task Execution Queue protocols.
	TasksExecuted atomic.Uint64
	// TraceMerges counts deterministic merges of the per-worker trace
	// buffers into the final trace.
	TraceMerges atomic.Uint64

	// Lock-hold hot spots: cumulative nanoseconds and acquisition counts
	// of the two widest critical sections. Only populated when timing is
	// enabled (SetTiming), because reading the clock twice per task is
	// itself a measurable cost.
	InsertHoldNS  atomic.Int64
	InsertHolds   atomic.Uint64
	ExecuteHoldNS atomic.Int64
	ExecuteHolds  atomic.Uint64

	timing atomic.Bool
}

// SetTiming enables or disables lock-hold timing (disabled by default).
func (c *Counters) SetTiming(on bool) { c.timing.Store(on) }

// Timing reports whether lock-hold timing is enabled.
func (c *Counters) Timing() bool { return c.timing.Load() }

// noop is the shared disabled-timer closure (no per-call allocation).
var noop = func() {}

// InsertTimer starts timing the engine's insertion critical section.
// Usage: stop := c.InsertTimer(); ...; stop(). Nil-safe; a no-op (and no
// clock read) unless timing is enabled.
func (c *Counters) InsertTimer() func() {
	if c == nil || !c.timing.Load() {
		return noop
	}
	elapsed := stopwatch.StartNS()
	return func() {
		c.InsertHoldNS.Add(elapsed())
		c.InsertHolds.Add(1)
	}
}

// ExecuteTimer starts timing the simulator's queue critical section.
// Nil-safe; a no-op unless timing is enabled.
func (c *Counters) ExecuteTimer() func() {
	if c == nil || !c.timing.Load() {
		return noop
	}
	elapsed := stopwatch.StartNS()
	return func() {
		c.ExecuteHoldNS.Add(elapsed())
		c.ExecuteHolds.Add(1)
	}
}

// Snapshot is a plain-value copy of the counters, safe to serialize.
type Snapshot struct {
	TargetedWakeups   uint64 `json:"targeted_wakeups"`
	CollectiveWakeups uint64 `json:"collective_wakeups"`
	SpuriousWakeups   uint64 `json:"spurious_wakeups"`
	FrontHandoffs     uint64 `json:"front_handoffs"`
	FrontParks        uint64 `json:"front_parks"`
	QuiescenceParks   uint64 `json:"quiescence_parks"`
	QuiescenceSpins   uint64 `json:"quiescence_spins"`
	QuiescenceKicks   uint64 `json:"quiescence_kicks"`
	TasksExecuted     uint64 `json:"tasks_executed"`
	TraceMerges       uint64 `json:"trace_merges"`
	InsertHoldNS      int64  `json:"insert_hold_ns,omitempty"`
	InsertHolds       uint64 `json:"insert_holds,omitempty"`
	ExecuteHoldNS     int64  `json:"execute_hold_ns,omitempty"`
	ExecuteHolds      uint64 `json:"execute_holds,omitempty"`
}

// Snapshot captures the current counter values. Safe to call while
// producers are still incrementing (each field is individually atomic).
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		TargetedWakeups:   c.TargetedWakeups.Load(),
		CollectiveWakeups: c.CollectiveWakeups.Load(),
		SpuriousWakeups:   c.SpuriousWakeups.Load(),
		FrontHandoffs:     c.FrontHandoffs.Load(),
		FrontParks:        c.FrontParks.Load(),
		QuiescenceParks:   c.QuiescenceParks.Load(),
		QuiescenceSpins:   c.QuiescenceSpins.Load(),
		QuiescenceKicks:   c.QuiescenceKicks.Load(),
		TasksExecuted:     c.TasksExecuted.Load(),
		TraceMerges:       c.TraceMerges.Load(),
		InsertHoldNS:      c.InsertHoldNS.Load(),
		InsertHolds:       c.InsertHolds.Load(),
		ExecuteHoldNS:     c.ExecuteHoldNS.Load(),
		ExecuteHolds:      c.ExecuteHolds.Load(),
	}
}

// Sub returns the element-wise difference s - prev, for interval reporting.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		TargetedWakeups:   s.TargetedWakeups - prev.TargetedWakeups,
		CollectiveWakeups: s.CollectiveWakeups - prev.CollectiveWakeups,
		SpuriousWakeups:   s.SpuriousWakeups - prev.SpuriousWakeups,
		FrontHandoffs:     s.FrontHandoffs - prev.FrontHandoffs,
		FrontParks:        s.FrontParks - prev.FrontParks,
		QuiescenceParks:   s.QuiescenceParks - prev.QuiescenceParks,
		QuiescenceSpins:   s.QuiescenceSpins - prev.QuiescenceSpins,
		QuiescenceKicks:   s.QuiescenceKicks - prev.QuiescenceKicks,
		TasksExecuted:     s.TasksExecuted - prev.TasksExecuted,
		TraceMerges:       s.TraceMerges - prev.TraceMerges,
		InsertHoldNS:      s.InsertHoldNS - prev.InsertHoldNS,
		InsertHolds:       s.InsertHolds - prev.InsertHolds,
		ExecuteHoldNS:     s.ExecuteHoldNS - prev.ExecuteHoldNS,
		ExecuteHolds:      s.ExecuteHolds - prev.ExecuteHolds,
	}
}

// Add returns the element-wise sum s + other, for aggregating the
// counters of multiple runs (the simulation service sums per-run deltas
// into its service-lifetime totals this way).
func (s Snapshot) Add(other Snapshot) Snapshot {
	return Snapshot{
		TargetedWakeups:   s.TargetedWakeups + other.TargetedWakeups,
		CollectiveWakeups: s.CollectiveWakeups + other.CollectiveWakeups,
		SpuriousWakeups:   s.SpuriousWakeups + other.SpuriousWakeups,
		FrontHandoffs:     s.FrontHandoffs + other.FrontHandoffs,
		FrontParks:        s.FrontParks + other.FrontParks,
		QuiescenceParks:   s.QuiescenceParks + other.QuiescenceParks,
		QuiescenceSpins:   s.QuiescenceSpins + other.QuiescenceSpins,
		QuiescenceKicks:   s.QuiescenceKicks + other.QuiescenceKicks,
		TasksExecuted:     s.TasksExecuted + other.TasksExecuted,
		TraceMerges:       s.TraceMerges + other.TraceMerges,
		InsertHoldNS:      s.InsertHoldNS + other.InsertHoldNS,
		InsertHolds:       s.InsertHolds + other.InsertHolds,
		ExecuteHoldNS:     s.ExecuteHoldNS + other.ExecuteHoldNS,
		ExecuteHolds:      s.ExecuteHolds + other.ExecuteHolds,
	}
}

// PerTask normalizes a counter by the executed-task count; 0 when no task
// completed in the interval.
func (s Snapshot) PerTask(counter uint64) float64 {
	if s.TasksExecuted == 0 {
		return 0
	}
	return float64(counter) / float64(s.TasksExecuted)
}

// String renders a compact human-readable report.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasks=%d wakeups: targeted=%d collective=%d spurious=%d",
		s.TasksExecuted, s.TargetedWakeups, s.CollectiveWakeups, s.SpuriousWakeups)
	fmt.Fprintf(&b, "; queue: handoffs=%d parks=%d qparks=%d qspins=%d qkicks=%d merges=%d",
		s.FrontHandoffs, s.FrontParks, s.QuiescenceParks, s.QuiescenceSpins, s.QuiescenceKicks, s.TraceMerges)
	if s.InsertHolds > 0 {
		fmt.Fprintf(&b, "; insert-hold=%.0fns/op", float64(s.InsertHoldNS)/float64(s.InsertHolds))
	}
	if s.ExecuteHolds > 0 {
		fmt.Fprintf(&b, "; execute-hold=%.0fns/op", float64(s.ExecuteHoldNS)/float64(s.ExecuteHolds))
	}
	return b.String()
}
