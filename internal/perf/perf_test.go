package perf

import (
	"reflect"
	"testing"
)

// fill sets every Snapshot field to a distinct value derived from base, by
// reflection, so a field added to Snapshot without updating Sub/Add makes
// the algebra tests below fail instead of silently passing.
func fill(base int64) Snapshot {
	var s Snapshot
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(base + int64(i)))
		case reflect.Int64:
			f.SetInt(base + int64(i))
		default:
			panic("perf: unexpected Snapshot field kind " + f.Kind().String())
		}
	}
	return s
}

func TestSnapshotAlgebra(t *testing.T) {
	a, b := fill(100), fill(1000)
	sum := a.Add(b)
	if got := sum.Sub(b); got != a {
		t.Fatalf("(a+b)-b != a: got %+v, want %+v", got, a)
	}
	if got := sum.Sub(a); got != b {
		t.Fatalf("(a+b)-a != b: got %+v, want %+v", got, b)
	}
	var zero Snapshot
	if got := a.Add(zero); got != a {
		t.Fatalf("a+0 != a: got %+v", got)
	}
	if got := a.Sub(a); got != zero {
		t.Fatalf("a-a != 0: got %+v", got)
	}
}

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.TargetedWakeups.Add(3)
	c.TasksExecuted.Add(7)
	c.SpuriousWakeups.Add(1)
	s := c.Snapshot()
	if s.TargetedWakeups != 3 || s.TasksExecuted != 7 || s.SpuriousWakeups != 1 {
		t.Fatalf("snapshot did not copy counters: %+v", s)
	}
	if got := s.PerTask(s.TargetedWakeups); got != 3.0/7.0 {
		t.Fatalf("PerTask = %v, want %v", got, 3.0/7.0)
	}
	var nilC *Counters
	if got := nilC.Snapshot(); got != (Snapshot{}) {
		t.Fatalf("nil Counters snapshot = %+v, want zero", got)
	}
}
