package hazard

import (
	"testing"
	"testing/quick"

	"supersim/internal/graph"
)

func depsOf(t *Tracker, args ...Arg) (int, map[int]graph.EdgeKind) {
	id, deps := t.Insert(args)
	m := make(map[int]graph.EdgeKind)
	for _, d := range deps {
		m[d.Pred] = d.Kind
	}
	return id, m
}

func TestRaWDependence(t *testing.T) {
	tr := NewTracker()
	h := "x"
	w, _ := depsOf(tr, Arg{h, Write})
	r, deps := depsOf(tr, Arg{h, Read})
	if w != 0 || r != 1 {
		t.Fatalf("ids %d %d", w, r)
	}
	if deps[w] != graph.EdgeRaW {
		t.Errorf("deps %v, want RaW on task 0", deps)
	}
}

func TestWaRDependence(t *testing.T) {
	tr := NewTracker()
	h := "x"
	depsOf(tr, Arg{h, Write})
	r1, _ := depsOf(tr, Arg{h, Read})
	r2, _ := depsOf(tr, Arg{h, Read})
	_, deps := depsOf(tr, Arg{h, Write})
	if deps[r1] != graph.EdgeWaR || deps[r2] != graph.EdgeWaR {
		t.Errorf("writer deps %v, want WaR on both readers", deps)
	}
	// The WaW against task 0 must also be present.
	if deps[0] != graph.EdgeWaW {
		t.Errorf("writer deps %v, want WaW on task 0", deps)
	}
}

func TestWaWDependence(t *testing.T) {
	tr := NewTracker()
	h := "x"
	depsOf(tr, Arg{h, Write})
	_, deps := depsOf(tr, Arg{h, Write})
	if deps[0] != graph.EdgeWaW {
		t.Errorf("deps %v, want WaW", deps)
	}
}

func TestParallelReadersShareNoDependence(t *testing.T) {
	tr := NewTracker()
	h := "x"
	depsOf(tr, Arg{h, Write})
	_, d1 := depsOf(tr, Arg{h, Read})
	_, d2 := depsOf(tr, Arg{h, Read})
	if _, ok := d2[1]; ok {
		t.Error("second reader depends on first reader")
	}
	if d1[0] != graph.EdgeRaW || d2[0] != graph.EdgeRaW {
		t.Error("readers missing RaW on the writer")
	}
}

func TestReadWriteGetsStrongestKind(t *testing.T) {
	tr := NewTracker()
	h := "x"
	depsOf(tr, Arg{h, ReadWrite})
	_, deps := depsOf(tr, Arg{h, ReadWrite})
	// RW after RW: both RaW and WaW against task 0; RaW must win.
	if deps[0] != graph.EdgeRaW {
		t.Errorf("RW-RW dep kind = %v, want RaW", deps[0])
	}
}

func TestIndependentHandles(t *testing.T) {
	tr := NewTracker()
	depsOf(tr, Arg{"a", Write})
	_, deps := depsOf(tr, Arg{"b", Write})
	if len(deps) != 0 {
		t.Errorf("independent handles produced deps %v", deps)
	}
	if tr.NumHandles() != 2 {
		t.Errorf("NumHandles = %d", tr.NumHandles())
	}
}

func TestMultiArgTask(t *testing.T) {
	// GEMM-like: reads a and b, read-writes c.
	tr := NewTracker()
	a, b, c := "a", "b", "c"
	depsOf(tr, Arg{a, Write})
	depsOf(tr, Arg{b, Write})
	depsOf(tr, Arg{c, Write})
	_, deps := depsOf(tr, Arg{c, ReadWrite}, Arg{a, Read}, Arg{b, Read})
	if len(deps) != 3 {
		t.Fatalf("deps %v, want 3 predecessors", deps)
	}
}

func TestFirstAccessHasNoDeps(t *testing.T) {
	tr := NewTracker()
	_, deps := depsOf(tr, Arg{"fresh", ReadWrite})
	if len(deps) != 0 {
		t.Errorf("first access produced deps %v", deps)
	}
}

func TestReset(t *testing.T) {
	tr := NewTracker()
	depsOf(tr, Arg{"x", Write})
	tr.Reset()
	if tr.NumTasks() != 0 || tr.NumHandles() != 0 {
		t.Error("Reset did not clear state")
	}
	_, deps := depsOf(tr, Arg{"x", Read})
	if len(deps) != 0 {
		t.Error("state leaked across Reset")
	}
}

func TestAccessString(t *testing.T) {
	if Read.String() != "r" || Write.String() != "w" || ReadWrite.String() != "rw" {
		t.Error("access mode rendering wrong")
	}
	if Access(0).String() != "?" {
		t.Error("unknown access mode rendering wrong")
	}
}

// Serializability property: executing tasks in ANY topological order of
// the derived dependence graph must leave the simulated memory in the same
// state as serial execution. Each task writes its own id into every handle
// it writes and reads the current value of every handle it reads; the
// hazards must force identical read observations and final memory.
func TestSerializabilityProperty(t *testing.T) {
	type task struct {
		args []Arg
	}
	run := func(tasks []task, order []int) (reads map[int][]int, mem map[any]int) {
		reads = make(map[int][]int)
		mem = make(map[any]int)
		for _, id := range order {
			for _, a := range tasks[id].args {
				if a.Mode&Read != 0 {
					reads[id] = append(reads[id], mem[a.Handle])
				}
			}
			for _, a := range tasks[id].args {
				if a.Mode&Write != 0 {
					mem[a.Handle] = id + 1
				}
			}
		}
		return
	}
	err := quick.Check(func(spec []uint8) bool {
		handles := []any{"a", "b", "c"}
		var tasks []task
		for i := 0; i+1 < len(spec) && len(tasks) < 12; i += 2 {
			h := handles[int(spec[i])%len(handles)]
			mode := []Access{Read, Write, ReadWrite}[int(spec[i+1])%3]
			tasks = append(tasks, task{args: []Arg{{h, mode}}})
		}
		if len(tasks) == 0 {
			return true
		}
		// Build the dependence graph.
		tr := NewTracker()
		g := graph.New()
		for _, tk := range tasks {
			id := g.AddNode("t", "K", 1)
			hid, deps := tr.Insert(tk.args)
			if hid != id {
				return false
			}
			for _, d := range deps {
				g.AddEdge(d.Pred, id, d.Kind)
			}
		}
		// Serial order is the reference.
		serialOrder := make([]int, len(tasks))
		for i := range serialOrder {
			serialOrder[i] = i
		}
		wantReads, wantMem := run(tasks, serialOrder)
		// A "greedy reversed" topological order: repeatedly take the
		// highest-id ready task — an adversarial legal schedule.
		indeg := make([]int, len(tasks))
		succs := make(map[int][]int)
		for _, e := range g.Edges {
			indeg[e.To]++
			succs[e.From] = append(succs[e.From], e.To)
		}
		var order []int
		ready := []int{}
		for i, d := range indeg {
			if d == 0 {
				ready = append(ready, i)
			}
		}
		for len(ready) > 0 {
			// take max id
			best := 0
			for i, id := range ready {
				if id > ready[best] {
					best = i
				}
			}
			id := ready[best]
			ready = append(ready[:best], ready[best+1:]...)
			order = append(order, id)
			for _, s := range succs[id] {
				indeg[s]--
				if indeg[s] == 0 {
					ready = append(ready, s)
				}
			}
		}
		if len(order) != len(tasks) {
			return false
		}
		gotReads, gotMem := run(tasks, order)
		if len(gotMem) != len(wantMem) {
			return false
		}
		for h, v := range wantMem {
			if gotMem[h] != v {
				return false
			}
		}
		for id, vals := range wantReads {
			got := gotReads[id]
			if len(got) != len(vals) {
				return false
			}
			for i := range vals {
				if got[i] != vals[i] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
