// Package hazard implements the superscalar data-hazard analysis shared by
// all three scheduler reproductions and by the DAG builder: given a serial
// stream of tasks, each annotated with the data it reads and writes, it
// derives the Read-after-Write, Write-after-Read and Write-after-Write
// dependences (Section IV-A of the paper).
//
// Handles are opaque comparable values identifying a datum (in practice a
// *tile.Tile pointer); the tracker never dereferences them, exactly as the
// paper's simulator requires real addresses only for dependence identity.
package hazard

import "supersim/internal/graph"

// Access is the declared access mode of a task argument.
type Access uint8

const (
	// Read declares input access (the "r" decoration in Fig. 2).
	Read Access = 1 << iota
	// Write declares output access (the "w" decoration in Fig. 2).
	Write
	// ReadWrite declares in-out access (the "rw" decoration in Fig. 2).
	ReadWrite = Read | Write
)

// String renders the access mode as in the paper's pseudocode decorations.
func (a Access) String() string {
	switch a {
	case Read:
		return "r"
	case Write:
		return "w"
	case ReadWrite:
		return "rw"
	default:
		return "?"
	}
}

// Dep is one derived dependence: the task being inserted depends on the
// task with index Pred.
type Dep struct {
	Pred int
	Kind graph.EdgeKind
}

// access records one past access to a handle.
type state struct {
	lastWriter       int   // task index of last writer, -1 if none
	readersSinceLast []int // readers since the last write
}

// Tracker incrementally derives dependences from a serial task stream.
// It is not safe for concurrent use; schedulers serialize insertion
// (superscalar semantics) so a single goroutine owns it.
type Tracker struct {
	states map[any]*state
	next   int
	// deps is the reusable result buffer handed out by Insert; preds
	// mirrors the predecessor ids for the linear dedup scan. A task's
	// predecessor count is small (bounded by its argument count plus the
	// readers of its written handles), so linear scan beats a map.
	deps  []Dep
	preds []int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{states: make(map[any]*state)}
}

// Arg pairs a data handle with its access mode.
type Arg struct {
	Handle any
	Mode   Access
}

// hazardRank orders hazard kinds by strength for dedup: RaW over WaW over
// WaR.
func hazardRank(k graph.EdgeKind) int {
	switch k {
	case graph.EdgeRaW:
		return 3
	case graph.EdgeWaW:
		return 2
	case graph.EdgeWaR:
		return 1
	default:
		return 0
	}
}

// record merges one hazard into the dedup buffer, keeping the strongest
// kind per predecessor.
func (t *Tracker) record(id, pred int, kind graph.EdgeKind) {
	if pred < 0 || pred == id {
		return
	}
	for i, p := range t.preds {
		if p == pred {
			if hazardRank(kind) > hazardRank(t.deps[i].Kind) {
				t.deps[i].Kind = kind
			}
			return
		}
	}
	t.preds = append(t.preds, pred)
	t.deps = append(t.deps, Dep{Pred: pred, Kind: kind})
}

// Insert registers the next task in the serial stream with its argument
// list and returns its task index along with the dependences it must wait
// for. Multiple hazards against the same predecessor are deduplicated with
// RaW preferred over WaW over WaR (the strongest reported kind), matching
// how runtime systems count a predecessor only once.
//
// The returned slice is owned by the tracker and valid only until the next
// Insert call; callers that keep dependences must copy them.
func (t *Tracker) Insert(args []Arg) (id int, deps []Dep) {
	id = t.next
	t.next++
	if len(args) == 0 {
		return id, nil
	}
	t.deps = t.deps[:0]
	t.preds = t.preds[:0]
	for _, a := range args {
		st := t.states[a.Handle]
		if st == nil {
			st = &state{lastWriter: -1}
			t.states[a.Handle] = st
		}
		if a.Mode&Read != 0 {
			t.record(id, st.lastWriter, graph.EdgeRaW)
		}
		if a.Mode&Write != 0 {
			t.record(id, st.lastWriter, graph.EdgeWaW)
			for _, r := range st.readersSinceLast {
				t.record(id, r, graph.EdgeWaR)
			}
		}
		// Update the handle's state after deriving hazards. A task that
		// appears multiple times in the arg list for the same handle is
		// processed per-arg, which matches serial insertion semantics.
		if a.Mode&Write != 0 {
			st.lastWriter = id
			st.readersSinceLast = st.readersSinceLast[:0]
		} else {
			st.readersSinceLast = append(st.readersSinceLast, id)
		}
	}
	return id, t.deps
}

// NumTasks returns how many tasks have been inserted.
func (t *Tracker) NumTasks() int { return t.next }

// NumHandles returns how many distinct data handles have been seen.
func (t *Tracker) NumHandles() int { return len(t.states) }

// Reset clears all state, reusing the allocation.
func (t *Tracker) Reset() {
	for k := range t.states {
		delete(t.states, k)
	}
	t.next = 0
}
