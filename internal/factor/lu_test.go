package factor

import (
	"math"
	"testing"

	"supersim/internal/kernels"
	"supersim/internal/tile"
	"supersim/internal/workload"
)

func TestLUSequentialCorrect(t *testing.T) {
	for _, shape := range []struct{ nt, nb int }{{1, 8}, {2, 5}, {3, 8}, {5, 10}} {
		a := workload.RandomDiagonallyDominant(shape.nt, shape.nb, 21)
		orig := a.Clone()
		if err := RunSequential(LU(a)); err != nil {
			t.Fatalf("nt=%d nb=%d: %v", shape.nt, shape.nb, err)
		}
		if r := LUResidual(orig, a); r > residualTol {
			t.Errorf("nt=%d nb=%d: residual %g", shape.nt, shape.nb, r)
		}
	}
}

func TestLUScheduledCorrect(t *testing.T) {
	a := workload.RandomDiagonallyDominant(4, 8, 22)
	orig := a.Clone()
	q := mustQuark(3)
	sink := InsertReal(q, LU(a))
	q.Shutdown()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if r := LUResidual(orig, a); r > residualTol {
		t.Errorf("scheduled LU residual %g", r)
	}
}

func TestLUMatchesGaussianElimination(t *testing.T) {
	// Compare U's diagonal against dense Gaussian elimination without
	// pivoting on the same matrix.
	nt, nb := 2, 4
	a := workload.RandomDiagonallyDominant(nt, nb, 23)
	dense := a.ToDense()
	n := a.N()
	// Dense LU without pivoting.
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			dense[i*n+k] /= dense[k*n+k]
			for j := k + 1; j < n; j++ {
				dense[i*n+j] -= dense[i*n+k] * dense[k*n+j]
			}
		}
	}
	if err := RunSequential(LU(a)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(a.At(i, j) - dense[i*n+j]); d > 1e-9 {
				t.Fatalf("LU mismatch at (%d,%d): %g vs %g", i, j, a.At(i, j), dense[i*n+j])
			}
		}
	}
}

func TestLUZeroPivotDetected(t *testing.T) {
	a := tile.NewMatrix(2, 3) // all zeros: first pivot vanishes
	err := RunSequential(LU(a))
	if err == nil {
		t.Fatal("LU accepted a singular matrix")
	}
	if _, ok := err.(*kernels.ErrZeroPivot); !ok {
		t.Errorf("error type %T, want *kernels.ErrZeroPivot", err)
	}
}

func TestLUTaskCounts(t *testing.T) {
	// NT getrf, NT(NT-1)/2 each of trsmu/trsml, sum k^2 = NT(NT-1)(2NT-1)/6 gemm.
	for _, nt := range []int{1, 2, 3, 5} {
		a := workload.RandomDiagonallyDominant(nt, 2, 5)
		counts := map[kernels.Class]int{}
		for _, op := range LU(a) {
			counts[op.Class]++
		}
		if counts[kernels.ClassGETRF] != nt {
			t.Errorf("nt=%d: %d GETRF", nt, counts[kernels.ClassGETRF])
		}
		if want := nt * (nt - 1) / 2; counts[kernels.ClassTRSMU] != want || counts[kernels.ClassTRSML] != want {
			t.Errorf("nt=%d: %d TRSMU / %d TRSML, want %d each",
				nt, counts[kernels.ClassTRSMU], counts[kernels.ClassTRSML], want)
		}
		if want := nt * (nt - 1) * (2*nt - 1) / 6; counts[kernels.ClassGEMM] != want {
			t.Errorf("nt=%d: %d GEMM, want %d", nt, counts[kernels.ClassGEMM], want)
		}
	}
}

func TestLUDAGAcyclicWithSingleRoot(t *testing.T) {
	a := workload.RandomDiagonallyDominant(4, 2, 5)
	g := BuildDAG(LU(a), nil)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	roots := 0
	for id := range g.Nodes {
		if len(g.Predecessors(id)) == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("LU DAG has %d roots, want 1 (the first GETRF)", roots)
	}
}

func TestLUStreamDispatch(t *testing.T) {
	a := workload.RandomDiagonallyDominant(2, 3, 5)
	ops, err := Stream("lu", a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 || ops[0].Class != kernels.ClassGETRF {
		t.Error("Stream(lu) wrong")
	}
}
