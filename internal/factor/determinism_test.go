package factor

import (
	"testing"

	"supersim/internal/core"
	"supersim/internal/sched"
	"supersim/internal/sched/starpu"
	"supersim/internal/tile"
	"supersim/internal/workload"
)

// Scheduled execution must be bit-identical to sequential execution: the
// hazard analysis serializes every pair of tasks that touch the same tile
// with a write, so the floating-point operation order per tile is fixed
// regardless of which interleaving the scheduler picks. This is the
// strongest possible check that the runtimes enforce exactly the
// dependences the superscalar model promises.
func TestScheduledExecutionBitIdenticalToSequential(t *testing.T) {
	nt, nb := 5, 8
	for _, alg := range []string{"cholesky", "qr", "lu"} {
		// Sequential reference.
		seqA, seqT := workload.ForAlgorithm(alg, nt, nb, 77)
		ops, err := Stream(alg, seqA, seqT)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunSequential(ops); err != nil {
			t.Fatalf("%s sequential: %v", alg, err)
		}
		for trial := 0; trial < 3; trial++ {
			for _, rtName := range []string{"quark", "starpu", "ompss"} {
				a, tm := workload.ForAlgorithm(alg, nt, nb, 77)
				ops, err := Stream(alg, a, tm)
				if err != nil {
					t.Fatal(err)
				}
				var sinkErr error
				switch rtName {
				case "quark":
					q := mustQuark(4)
					sink := InsertReal(q, ops)
					q.Shutdown()
					sinkErr = sink.Err()
				case "starpu":
					s, err := starpu.New(starpu.Conf{NCPUs: 4, Policy: starpu.PolicyWS})
					if err != nil {
						t.Fatal(err)
					}
					sink := InsertReal(s, ops)
					s.Shutdown()
					sinkErr = sink.Err()
				case "ompss":
					o := mustOmpSs(4)
					sink := InsertReal(o, ops)
					o.Shutdown()
					sinkErr = sink.Err()
				}
				if sinkErr != nil {
					t.Fatalf("%s on %s: %v", alg, rtName, sinkErr)
				}
				if d := a.MaxAbsDiff(seqA); d != 0 {
					t.Errorf("%s on %s (trial %d): scheduled result differs from sequential by %g",
						alg, rtName, trial, d)
				}
				if tm != nil {
					if d := tm.MaxAbsDiff(seqT); d != 0 {
						t.Errorf("%s on %s (trial %d): T factors differ by %g",
							alg, rtName, trial, d)
					}
				}
			}
		}
	}
}

// The same property must hold under measured-mode simulation (the bodies
// still execute; only the timeline accounting is added).
func TestMeasuredModePreservesNumerics(t *testing.T) {
	nt, nb := 4, 8
	seqA, seqT := workload.ForAlgorithm("qr", nt, nb, 99)
	ops, err := Stream("qr", seqA, seqT)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunSequential(ops); err != nil {
		t.Fatal(err)
	}
	a := workload.RandomGeneral(nt, nb, 99)
	tm := tile.NewMatrix(nt, nb)
	q := mustQuark(3)
	sim := newTestSimulator(q)
	sink := InsertMeasured(q, sim, QR(a, tm))
	q.Shutdown()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if d := a.MaxAbsDiff(seqA); d != 0 {
		t.Errorf("measured-mode result differs from sequential by %g", d)
	}
}

// newTestSimulator builds a measured-mode simulator for tests.
func newTestSimulator(rt sched.Runtime) *core.Simulator {
	return core.NewSimulator(rt, "test")
}
