package factor

import (
	"math"

	"supersim/internal/kernels"
	"supersim/internal/tile"
)

// This file verifies factorizations produced by the tile algorithms, giving
// the test suite and the examples scale-free residual measures.

// CholeskyResidual returns ||A - L*L^T||_F / ||A||_F where factored holds
// the in-place tile Cholesky result of orig.
func CholeskyResidual(orig, factored *tile.Matrix) float64 {
	l := factored.LowerTriangular()
	n := l.N()
	rebuilt := tile.NewMatrix(l.NT, l.NB)
	// rebuilt = L * L^T, dense triple loop over tiles.
	for i := 0; i < l.NT; i++ {
		for j := 0; j < l.NT; j++ {
			for k := 0; k < l.NT; k++ {
				kernels.Gemm(false, true, 1, l.Tile(i, k), l.Tile(j, k), 1, rebuilt.Tile(i, j))
			}
		}
	}
	sym := orig.Clone()
	sym.Symmetrize()
	var num, den float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := rebuilt.At(i, j) - sym.At(i, j)
			num += d * d
			v := sym.At(i, j)
			den += v * v
		}
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// ApplyQT applies Q^T from a tile QR factorization (a holds V/R, t holds
// the T factors) to the tile matrix b in place, replaying the reflector
// sequence in factorization order over all of b's columns.
func ApplyQT(a, t, b *tile.Matrix) {
	nt := a.NT
	for k := 0; k < nt; k++ {
		for n := 0; n < nt; n++ {
			kernels.Ormqr(a.Tile(k, k), t.Tile(k, k), b.Tile(k, n))
		}
		for m := k + 1; m < nt; m++ {
			for n := 0; n < nt; n++ {
				kernels.Tsmqr(b.Tile(k, n), b.Tile(m, n), a.Tile(m, k), t.Tile(m, k))
			}
		}
	}
}

// ApplyQ applies Q (not transposed) to the tile matrix b in place: the
// reflector sequence in reverse order without transposition.
func ApplyQ(a, t, b *tile.Matrix) {
	nt := a.NT
	for k := nt - 1; k >= 0; k-- {
		for m := nt - 1; m > k; m-- {
			for n := 0; n < nt; n++ {
				kernels.TsmqrNoTrans(b.Tile(k, n), b.Tile(m, n), a.Tile(m, k), t.Tile(m, k))
			}
		}
		for n := 0; n < nt; n++ {
			kernels.OrmqrNoTrans(a.Tile(k, k), t.Tile(k, k), b.Tile(k, n))
		}
	}
}

// QRResidual returns ||A - Q*R||_F / ||A||_F for a tile QR factorization
// of orig, where factored holds R (upper triangle) and the V blocks, and
// tmat holds the T factors.
func QRResidual(orig, factored, tmat *tile.Matrix) float64 {
	r := factored.UpperTriangular()
	ApplyQ(factored, tmat, r) // r <- Q * R
	n := orig.N()
	var num, den float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := r.At(i, j) - orig.At(i, j)
			num += d * d
			v := orig.At(i, j)
			den += v * v
		}
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// QROrthogonality returns ||Q^T*Q - I||_F / sqrt(N) for a tile QR
// factorization: it builds M = Q^T * I and measures ||M*M^T - I||.
func QROrthogonality(factored, tmat *tile.Matrix) float64 {
	nt, nb := factored.NT, factored.NB
	m := tile.Identity(nt, nb)
	ApplyQT(factored, tmat, m) // m <- Q^T
	// g = m * m^T - I.
	g := tile.NewMatrix(nt, nb)
	for i := 0; i < nt; i++ {
		for j := 0; j < nt; j++ {
			for k := 0; k < nt; k++ {
				kernels.Gemm(false, true, 1, m.Tile(i, k), m.Tile(j, k), 1, g.Tile(i, j))
			}
		}
	}
	n := g.N()
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := g.At(i, j)
			if i == j {
				v -= 1
			}
			sum += v * v
		}
	}
	return math.Sqrt(sum / float64(n))
}
