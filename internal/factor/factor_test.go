package factor

import (
	"strings"
	"testing"

	"supersim/internal/kernels"
	"supersim/internal/lapackref"
	"supersim/internal/sched/ompss"
	"supersim/internal/sched/quark"
	"supersim/internal/sched/starpu"
	"supersim/internal/tile"
	"supersim/internal/workload"
)

const residualTol = 1e-10

// mustQuark and mustOmpSs wrap the scheduler constructors for tests whose
// worker counts are always valid.
func mustQuark(workers int, opts ...quark.Option) *quark.Scheduler {
	q, err := quark.New(workers, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

func mustOmpSs(workers int, opts ...ompss.Option) *ompss.Scheduler {
	o, err := ompss.New(workers, opts...)
	if err != nil {
		panic(err)
	}
	return o
}

func TestCholeskySequentialCorrect(t *testing.T) {
	for _, shape := range []struct{ nt, nb int }{{1, 8}, {2, 5}, {3, 8}, {5, 12}} {
		a := workload.RandomSPD(shape.nt, shape.nb, 42)
		orig := a.Clone()
		if err := RunSequential(Cholesky(a)); err != nil {
			t.Fatalf("nt=%d nb=%d: %v", shape.nt, shape.nb, err)
		}
		if r := CholeskyResidual(orig, a); r > residualTol {
			t.Errorf("nt=%d nb=%d: residual %g", shape.nt, shape.nb, r)
		}
	}
}

func TestCholeskyMatchesLAPACKReference(t *testing.T) {
	nt, nb := 3, 7
	a := workload.RandomSPD(nt, nb, 7)
	ref := lapackref.FromSlice(a.ToDense(), a.N())
	if err := lapackref.Cholesky(ref); err != nil {
		t.Fatalf("reference Cholesky: %v", err)
	}
	if err := RunSequential(Cholesky(a)); err != nil {
		t.Fatalf("tile Cholesky: %v", err)
	}
	n := a.N()
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := a.At(i, j) - ref.At(i, j)
			if d < 0 {
				d = -d
			}
			if d > 1e-9 {
				t.Fatalf("L mismatch at (%d,%d): tile %g vs ref %g", i, j, a.At(i, j), ref.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	nt, nb := 2, 4
	a := tile.NewMatrix(nt, nb)
	n := a.N()
	for i := 0; i < n; i++ {
		a.Set(i, i, -1) // negative definite
	}
	err := RunSequential(Cholesky(a))
	if err == nil {
		t.Fatal("tile Cholesky accepted a negative definite matrix")
	}
}

func TestQRSequentialCorrect(t *testing.T) {
	for _, shape := range []struct{ nt, nb int }{{1, 8}, {2, 5}, {3, 8}, {4, 10}} {
		a := workload.RandomGeneral(shape.nt, shape.nb, 13)
		tm := tile.NewMatrix(shape.nt, shape.nb)
		orig := a.Clone()
		if err := RunSequential(QR(a, tm)); err != nil {
			t.Fatalf("nt=%d nb=%d: %v", shape.nt, shape.nb, err)
		}
		if r := QRResidual(orig, a, tm); r > residualTol {
			t.Errorf("nt=%d nb=%d: residual %g", shape.nt, shape.nb, r)
		}
		if o := QROrthogonality(a, tm); o > residualTol {
			t.Errorf("nt=%d nb=%d: orthogonality error %g", shape.nt, shape.nb, o)
		}
	}
}

func TestQRMatchesReferenceRUpToSigns(t *testing.T) {
	// The tile QR produces a different reflector sequence than plain
	// Householder QR, but |R| must agree.
	nt, nb := 2, 6
	a := workload.RandomGeneral(nt, nb, 99)
	tm := tile.NewMatrix(nt, nb)
	ref := lapackref.FromSlice(a.ToDense(), a.N())
	_, rRef := lapackref.QR(ref)
	if err := RunSequential(QR(a, tm)); err != nil {
		t.Fatal(err)
	}
	n := a.N()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			got, want := a.At(i, j), rRef.At(i, j)
			if got < 0 {
				got = -got
			}
			if want < 0 {
				want = -want
			}
			d := got - want
			if d < 0 {
				d = -d
			}
			if d > 1e-9 {
				t.Fatalf("|R| mismatch at (%d,%d): %g vs %g", i, j, a.At(i, j), rRef.At(i, j))
			}
		}
	}
}

func TestScheduledFactorizationsCorrectOnAllRuntimes(t *testing.T) {
	// The heart of superscalar correctness: out-of-order scheduled
	// execution must compute the same factorization as sequential order,
	// on every runtime reproduction.
	nt, nb := 4, 8
	for _, alg := range []string{"cholesky", "qr"} {
		for _, rtName := range []string{"quark", "starpu", "ompss"} {
			a, tm := workload.ForAlgorithm(alg, nt, nb, 31)
			orig := a.Clone()
			ops, err := Stream(alg, a, tm)
			if err != nil {
				t.Fatal(err)
			}
			switch rtName {
			case "quark":
				q := mustQuark(3)
				sink := InsertReal(q, ops)
				q.Shutdown()
				err = sink.Err()
			case "starpu":
				s, serr := starpu.New(starpu.Conf{NCPUs: 3, Policy: starpu.PolicyWS})
				if serr != nil {
					t.Fatal(serr)
				}
				sink := InsertReal(s, ops)
				s.Shutdown()
				err = sink.Err()
			case "ompss":
				o := mustOmpSs(3)
				sink := InsertReal(o, ops)
				o.Shutdown()
				err = sink.Err()
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, rtName, err)
			}
			var resid float64
			if alg == "cholesky" {
				resid = CholeskyResidual(orig, a)
			} else {
				resid = QRResidual(orig, a, tm)
			}
			if resid > residualTol {
				t.Errorf("%s on %s: residual %g", alg, rtName, resid)
			}
		}
	}
}

func TestTaskStreamMatchesPaperFig2(t *testing.T) {
	// The paper's Fig. 2 lists the serial task stream of a 3x3 tile QR:
	// F0..F13 = geqrt, unmqr x2, tsqrt, tsmqr x2, tsqrt, tsmqr x2,
	// geqrt, unmqr, tsqrt, tsmqr, geqrt.
	a := workload.RandomGeneral(3, 4, 1)
	tm := tile.NewMatrix(3, 4)
	ops := QR(a, tm)
	want := []kernels.Class{
		kernels.ClassGEQRT,
		kernels.ClassORMQR, kernels.ClassORMQR,
		kernels.ClassTSQRT, kernels.ClassTSMQR, kernels.ClassTSMQR,
		kernels.ClassTSQRT, kernels.ClassTSMQR, kernels.ClassTSMQR,
		kernels.ClassGEQRT, kernels.ClassORMQR,
		kernels.ClassTSQRT, kernels.ClassTSMQR,
		kernels.ClassGEQRT,
	}
	if len(ops) != len(want) {
		t.Fatalf("3x3 QR stream has %d tasks, want %d", len(ops), len(want))
	}
	for i, op := range ops {
		if op.Class != want[i] {
			t.Errorf("F%d = %s, want %s", i, op.Class, want[i])
		}
	}
	// Check a specific decoration against the paper: F4 reads A10, T10
	// and read-writes A01, A11.
	f4 := ops[4]
	s := f4.String()
	for _, frag := range []string{"A10^r", "T10^r", "A01^rw", "A11^rw"} {
		if !strings.Contains(s, frag) {
			t.Errorf("F4 rendering %q missing %q", s, frag)
		}
	}
}

func TestCholeskyTaskCounts(t *testing.T) {
	// Algorithm 1 counts: NT potrf, NT(NT-1)/2 trsm, NT(NT-1)/2 syrk,
	// NT(NT-1)(NT-2)/6 gemm.
	for _, nt := range []int{1, 2, 3, 5, 8} {
		a := workload.RandomSPD(nt, 2, 3)
		ops := Cholesky(a)
		counts := map[kernels.Class]int{}
		for _, op := range ops {
			counts[op.Class]++
		}
		if got, want := counts[kernels.ClassPOTRF], nt; got != want {
			t.Errorf("nt=%d: %d POTRF, want %d", nt, got, want)
		}
		if got, want := counts[kernels.ClassTRSM], nt*(nt-1)/2; got != want {
			t.Errorf("nt=%d: %d TRSM, want %d", nt, got, want)
		}
		if got, want := counts[kernels.ClassSYRK], nt*(nt-1)/2; got != want {
			t.Errorf("nt=%d: %d SYRK, want %d", nt, got, want)
		}
		if got, want := counts[kernels.ClassGEMM], nt*(nt-1)*(nt-2)/6; got != want {
			t.Errorf("nt=%d: %d GEMM, want %d", nt, got, want)
		}
	}
}

func TestQRTaskCounts(t *testing.T) {
	// Algorithm 2 counts: NT geqrt, NT(NT-1)/2 each of ormqr and tsqrt,
	// and sum_k (NT-k-1)^2 tsmqr.
	for _, nt := range []int{1, 2, 3, 4, 6} {
		a := workload.RandomGeneral(nt, 2, 3)
		tm := tile.NewMatrix(nt, 2)
		ops := QR(a, tm)
		counts := map[kernels.Class]int{}
		for _, op := range ops {
			counts[op.Class]++
		}
		tsmqr := 0
		for k := 0; k < nt; k++ {
			tsmqr += (nt - k - 1) * (nt - k - 1)
		}
		if got, want := counts[kernels.ClassGEQRT], nt; got != want {
			t.Errorf("nt=%d: %d GEQRT, want %d", nt, got, want)
		}
		if got, want := counts[kernels.ClassORMQR], nt*(nt-1)/2; got != want {
			t.Errorf("nt=%d: %d ORMQR, want %d", nt, got, want)
		}
		if got, want := counts[kernels.ClassTSQRT], nt*(nt-1)/2; got != want {
			t.Errorf("nt=%d: %d TSQRT, want %d", nt, got, want)
		}
		if got, want := counts[kernels.ClassTSMQR], tsmqr; got != want {
			t.Errorf("nt=%d: %d TSMQR, want %d", nt, got, want)
		}
	}
}

func TestBuildDAGQR4x4MatchesFig1Scale(t *testing.T) {
	// Fig. 1 shows the DAG of a 4x4 tile QR: 4+6+6+14 = 30 vertices.
	a := workload.RandomGeneral(4, 2, 3)
	tm := tile.NewMatrix(4, 2)
	ops := QR(a, tm)
	g := BuildDAG(ops, nil)
	if g.NumNodes() != 30 {
		t.Errorf("4x4 QR DAG has %d vertices, want 30", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("DAG not acyclic: %v", err)
	}
	depth, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if depth < 4 {
		t.Errorf("DAG depth %d unreasonably small", depth)
	}
	// Every non-root task must have at least one predecessor.
	roots := 0
	for id := range g.Nodes {
		if len(g.Predecessors(id)) == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("QR DAG has %d roots, want exactly 1 (the first GEQRT)", roots)
	}
}

func TestDAGSequentialOrderIsTopological(t *testing.T) {
	a := workload.RandomSPD(5, 2, 3)
	g := BuildDAG(Cholesky(a), nil)
	// Serial insertion order must respect all edges (pred id < succ id).
	for _, e := range g.Edges {
		if e.From >= e.To {
			t.Fatalf("edge %d -> %d against insertion order", e.From, e.To)
		}
	}
}
