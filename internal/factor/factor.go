// Package factor expresses the paper's two case-study algorithms — tile
// Cholesky (Algorithm 1) and tile QR (Algorithm 2) — as serial streams of
// superscalar tasks with read/write data annotations, exactly as a PLASMA
// user would insert them into QUARK, StarPU or OmpSs. The same stream can
// be executed sequentially (reference), scheduled for real (measured mode),
// scheduled in simulation (the paper's contribution), or analyzed into a
// dependence DAG (Fig. 1).
package factor

import (
	"fmt"

	"supersim/internal/hazard"
	"supersim/internal/kernels"
	"supersim/internal/sched"
	"supersim/internal/tile"
)

// OpArg is a named, access-annotated data reference of one task, carrying
// the information shown in the paper's Fig. 2 decorations (A^rw, T^r, ...).
type OpArg struct {
	Name   string
	Handle any
	Mode   hazard.Access
}

// Op is one task of a tile algorithm: the kernel class, a human-readable
// instance label, the access-annotated arguments, a relative priority, and
// the real compute body.
type Op struct {
	Class    kernels.Class
	Args     []OpArg
	Priority int
	// Body performs the real computation. It returns an error only for
	// numerical failures (currently: Cholesky on a non-SPD pivot tile).
	Body func() error
}

// Label renders the instance like "DTSMQR(1,2,0)" — class plus tile indices.
func (o Op) Label() string {
	s := string(o.Class) + "("
	for i, a := range o.Args {
		if i > 0 {
			s += ","
		}
		s += a.Name
	}
	return s + ")"
}

// String renders the op in the style of the paper's Fig. 2 task listing,
// for example "tsmqr( A01^rw, A11^rw, A10^r, T10^r )".
func (o Op) String() string {
	s := string(o.Class) + "("
	for i, a := range o.Args {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s^%s", a.Name, a.Mode)
	}
	return s + ")"
}

// SchedArgs converts the op's arguments to scheduler arguments.
func (o Op) SchedArgs() []sched.Arg {
	out := make([]sched.Arg, len(o.Args))
	for i, a := range o.Args {
		out[i] = sched.Arg{Handle: a.Handle, Mode: a.Mode}
	}
	return out
}

func argA(prefix string, t *tile.Tile, i, j int, mode hazard.Access) OpArg {
	return OpArg{Name: fmt.Sprintf("%s%d%d", prefix, i, j), Handle: t, Mode: mode}
}

// Task priorities: panel-factorization kernels ahead of updates, so that
// priority-aware policies advance the critical path (the standard PLASMA
// prioritization).
const (
	prioPanel  = 2
	prioSolve  = 1
	prioUpdate = 0
)

// Cholesky returns the serial task stream of the tile Cholesky
// factorization A = L*L^T (Algorithm 1 of the paper). The matrix is
// factored in place (lower triangle).
func Cholesky(a *tile.Matrix) []Op {
	nt := a.NT
	ops := make([]Op, 0, nt*nt*nt/6+nt*nt)
	for k := 0; k < nt; k++ {
		akk := a.Tile(k, k)
		ops = append(ops, Op{
			Class:    kernels.ClassPOTRF,
			Args:     []OpArg{argA("A", akk, k, k, hazard.ReadWrite)},
			Priority: prioPanel,
			Body:     func() error { return kernels.Potrf(akk) },
		})
		for i := k + 1; i < nt; i++ {
			aik := a.Tile(i, k)
			aii := a.Tile(i, i)
			ops = append(ops, Op{
				Class: kernels.ClassTRSM,
				Args: []OpArg{
					argA("A", akk, k, k, hazard.Read),
					argA("A", aik, i, k, hazard.ReadWrite),
				},
				Priority: prioSolve,
				Body:     func() error { kernels.Trsm(akk, aik); return nil },
			})
			ops = append(ops, Op{
				Class: kernels.ClassSYRK,
				Args: []OpArg{
					argA("A", aik, i, k, hazard.Read),
					argA("A", aii, i, i, hazard.ReadWrite),
				},
				Priority: prioUpdate,
				Body:     func() error { kernels.Syrk(-1, aik, 1, aii); return nil },
			})
		}
		for i := k + 2; i < nt; i++ {
			aik := a.Tile(i, k)
			for j := k + 1; j < i; j++ {
				ajk := a.Tile(j, k)
				aij := a.Tile(i, j)
				ops = append(ops, Op{
					Class: kernels.ClassGEMM,
					Args: []OpArg{
						argA("A", aij, i, j, hazard.ReadWrite),
						argA("A", aik, i, k, hazard.Read),
						argA("A", ajk, j, k, hazard.Read),
					},
					Priority: prioUpdate,
					Body: func() error {
						kernels.Gemm(false, true, -1, aik, ajk, 1, aij)
						return nil
					},
				})
			}
		}
	}
	return ops
}

// QR returns the serial task stream of the tile QR factorization
// (Algorithm 2 of the paper). a is factored in place (R in the upper
// triangle, Householder blocks below); t receives the block-reflector T
// factors and must be an NT x NT tile matrix of the same tile size.
func QR(a, t *tile.Matrix) []Op {
	if t.NT != a.NT || t.NB != a.NB {
		panic("factor: QR T matrix shape mismatch")
	}
	nt := a.NT
	ops := make([]Op, 0, nt*nt*nt/2+nt*nt)
	for k := 0; k < nt; k++ {
		akk := a.Tile(k, k)
		tkk := t.Tile(k, k)
		ops = append(ops, Op{
			Class: kernels.ClassGEQRT,
			Args: []OpArg{
				argA("A", akk, k, k, hazard.ReadWrite),
				argA("T", tkk, k, k, hazard.Write),
			},
			Priority: prioPanel,
			Body:     func() error { kernels.Geqrt(akk, tkk); return nil },
		})
		for n := k + 1; n < nt; n++ {
			akn := a.Tile(k, n)
			ops = append(ops, Op{
				Class: kernels.ClassORMQR,
				Args: []OpArg{
					argA("A", akk, k, k, hazard.Read),
					argA("T", tkk, k, k, hazard.Read),
					argA("A", akn, k, n, hazard.ReadWrite),
				},
				Priority: prioSolve,
				Body:     func() error { kernels.Ormqr(akk, tkk, akn); return nil },
			})
		}
		for m := k + 1; m < nt; m++ {
			amk := a.Tile(m, k)
			tmk := t.Tile(m, k)
			ops = append(ops, Op{
				Class: kernels.ClassTSQRT,
				Args: []OpArg{
					argA("A", akk, k, k, hazard.ReadWrite),
					argA("A", amk, m, k, hazard.ReadWrite),
					argA("T", tmk, m, k, hazard.Write),
				},
				Priority: prioSolve,
				Body:     func() error { kernels.Tsqrt(akk, amk, tmk); return nil },
			})
			for n := k + 1; n < nt; n++ {
				akn := a.Tile(k, n)
				amn := a.Tile(m, n)
				ops = append(ops, Op{
					Class: kernels.ClassTSMQR,
					Args: []OpArg{
						argA("A", amk, m, k, hazard.Read),
						argA("T", tmk, m, k, hazard.Read),
						argA("A", akn, k, n, hazard.ReadWrite),
						argA("A", amn, m, n, hazard.ReadWrite),
					},
					Priority: prioUpdate,
					Body: func() error {
						kernels.Tsmqr(akn, amn, amk, tmk)
						return nil
					},
				})
			}
		}
	}
	return ops
}

// Stream identifies a tile algorithm by name and builds its op stream.
// Supported names: "cholesky" (alias "chol"), "qr" and "lu".
func Stream(algorithm string, a, t *tile.Matrix) ([]Op, error) {
	switch algorithm {
	case "cholesky", "chol":
		return Cholesky(a), nil
	case "qr":
		if t == nil {
			return nil, fmt.Errorf("factor: qr requires a T matrix")
		}
		return QR(a, t), nil
	case "lu":
		return LU(a), nil
	default:
		return nil, fmt.Errorf("factor: unknown algorithm %q", algorithm)
	}
}
