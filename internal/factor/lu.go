package factor

import (
	"math"

	"supersim/internal/hazard"
	"supersim/internal/kernels"
	"supersim/internal/tile"
)

// LU returns the serial task stream of the tile LU factorization without
// pivoting (PLASMA dgetrf_nopiv): A = L*U with L unit lower triangular.
// The matrix must be such that all pivots stay nonzero (the workload
// generator's diagonally dominant matrices guarantee it). A is factored in
// place: U in the upper triangle (with diagonal), L strictly below (unit
// diagonal implicit).
func LU(a *tile.Matrix) []Op {
	nt := a.NT
	ops := make([]Op, 0, nt*nt*nt/3+nt*nt)
	for k := 0; k < nt; k++ {
		akk := a.Tile(k, k)
		ops = append(ops, Op{
			Class:    kernels.ClassGETRF,
			Args:     []OpArg{argA("A", akk, k, k, hazard.ReadWrite)},
			Priority: prioPanel,
			Body:     func() error { return kernels.Getrf(akk) },
		})
		for j := k + 1; j < nt; j++ {
			akj := a.Tile(k, j)
			ops = append(ops, Op{
				Class: kernels.ClassTRSMU,
				Args: []OpArg{
					argA("A", akk, k, k, hazard.Read),
					argA("A", akj, k, j, hazard.ReadWrite),
				},
				Priority: prioSolve,
				Body:     func() error { kernels.TrsmLowerUnit(akk, akj); return nil },
			})
		}
		for i := k + 1; i < nt; i++ {
			aik := a.Tile(i, k)
			ops = append(ops, Op{
				Class: kernels.ClassTRSML,
				Args: []OpArg{
					argA("A", akk, k, k, hazard.Read),
					argA("A", aik, i, k, hazard.ReadWrite),
				},
				Priority: prioSolve,
				Body:     func() error { kernels.TrsmUpperRight(akk, aik); return nil },
			})
		}
		for i := k + 1; i < nt; i++ {
			aik := a.Tile(i, k)
			for j := k + 1; j < nt; j++ {
				akj := a.Tile(k, j)
				aij := a.Tile(i, j)
				ops = append(ops, Op{
					Class: kernels.ClassGEMM,
					Args: []OpArg{
						argA("A", aij, i, j, hazard.ReadWrite),
						argA("A", aik, i, k, hazard.Read),
						argA("A", akj, k, j, hazard.Read),
					},
					Priority: prioUpdate,
					Body: func() error {
						kernels.Gemm(false, false, -1, aik, akj, 1, aij)
						return nil
					},
				})
			}
		}
	}
	return ops
}

// LUResidual returns ||A - L*U||_F / ||A||_F where factored holds the
// in-place tile LU (no pivoting) result of orig.
func LUResidual(orig, factored *tile.Matrix) float64 {
	n := factored.N()
	// Extract L (unit lower) and U (upper including diagonal) densely.
	l := tile.NewMatrix(factored.NT, factored.NB)
	u := tile.NewMatrix(factored.NT, factored.NB)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < i; j++ {
			l.Set(i, j, factored.At(i, j))
		}
		for j := i; j < n; j++ {
			u.Set(i, j, factored.At(i, j))
		}
	}
	rebuilt := tile.NewMatrix(factored.NT, factored.NB)
	for i := 0; i < factored.NT; i++ {
		for j := 0; j < factored.NT; j++ {
			for k := 0; k < factored.NT; k++ {
				kernels.Gemm(false, false, 1, l.Tile(i, k), u.Tile(k, j), 1, rebuilt.Tile(i, j))
			}
		}
	}
	var num, den float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := rebuilt.At(i, j) - orig.At(i, j)
			num += d * d
			v := orig.At(i, j)
			den += v * v
		}
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}
