package factor

import (
	"sync"

	"supersim/internal/core"
	"supersim/internal/graph"
	"supersim/internal/hazard"
	"supersim/internal/kernels"
	"supersim/internal/sched"
)

// RunSequential executes the op stream in insertion order on the calling
// goroutine. It is the single-core reference used by correctness tests.
// It stops at the first error.
func RunSequential(ops []Op) error {
	for _, op := range ops {
		if err := op.Body(); err != nil {
			return err
		}
	}
	return nil
}

// ErrorSink collects the first numerical error raised by scheduled task
// bodies (superscalar runtimes keep executing; the error surfaces at the
// barrier, like a QUARK sequence).
type ErrorSink struct {
	mu  sync.Mutex
	err error
}

// Record stores err if it is the first one.
func (s *ErrorSink) Record(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err returns the first recorded error, if any.
func (s *ErrorSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// InsertMeasured inserts the op stream into rt in measured mode: each task
// executes its real kernel body, and the measured time is accounted on
// sim's virtual timeline. This is the reproduction's "real run" (see
// DESIGN.md). Call rt.Barrier() afterwards and check sink.Err. Insertion
// stops at the first rejected task (e.g. an aborted runtime); the error
// is recorded in the sink.
func InsertMeasured(rt sched.Runtime, sim *core.Simulator, ops []Op) *ErrorSink {
	sink := &ErrorSink{}
	sim.Reserve(len(ops)) // one trace event per op: pre-size the buffers
	for i := range ops {
		op := ops[i]
		err := rt.Insert(&sched.Task{
			Class:    string(op.Class),
			Label:    op.Label(),
			Args:     op.SchedArgs(),
			Priority: op.Priority,
			Func: core.MeasuredTask(sim, string(op.Class), func(*sched.Ctx) {
				sink.Record(op.Body())
			}),
		})
		if err != nil {
			sink.Record(err)
			break
		}
	}
	return sink
}

// InsertSimulated inserts the op stream into rt in simulation mode: the
// kernel bodies are skipped and durations are sampled from the tasker's
// model — the paper's usage ("the programmer simply replaces each task
// function with a call to the simulation library"). Call rt.Barrier()
// afterwards. It returns the first insertion error (stopping there), or
// nil when the full stream was accepted.
func InsertSimulated(rt sched.Runtime, tk *core.Tasker, ops []Op) error {
	tk.Sim.Reserve(len(ops)) // one trace event per op: pre-size the buffers
	for i := range ops {
		op := ops[i]
		err := rt.Insert(&sched.Task{
			Class:    string(op.Class),
			Label:    op.Label(),
			Args:     op.SchedArgs(),
			Priority: op.Priority,
			Func:     tk.SimTask(string(op.Class)),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// InsertReal inserts the op stream for plain execution (no simulator, no
// virtual timeline): tasks just run their bodies under the scheduler.
// Used by tests that only care about numerical results and by wall-clock
// reference timings. Insertion stops at the first rejected task; the
// error is recorded in the sink.
func InsertReal(rt sched.Runtime, ops []Op) *ErrorSink {
	sink := &ErrorSink{}
	for i := range ops {
		op := ops[i]
		err := rt.Insert(&sched.Task{
			Class:    string(op.Class),
			Label:    op.Label(),
			Args:     op.SchedArgs(),
			Priority: op.Priority,
			Func:     func(*sched.Ctx) { sink.Record(op.Body()) },
		})
		if err != nil {
			sink.Record(err)
			break
		}
	}
	return sink
}

// BuildDAG derives the dependence DAG of the op stream through the same
// hazard analysis the runtimes use (Fig. 1 of the paper). weight assigns
// node weights (for critical-path analysis); nil weights every node 1.
func BuildDAG(ops []Op, weight func(kernels.Class) float64) *graph.DAG {
	if weight == nil {
		weight = func(kernels.Class) float64 { return 1 }
	}
	g := graph.New()
	tracker := hazard.NewTracker()
	for _, op := range ops {
		id := g.AddNode(op.Label(), string(op.Class), weight(op.Class))
		hid, deps := tracker.Insert(opHazardArgs(op))
		if hid != id {
			panic("factor: DAG node numbering out of sync with hazard tracker")
		}
		for _, d := range deps {
			g.AddEdge(d.Pred, id, d.Kind)
		}
	}
	return g
}

func opHazardArgs(op Op) []hazard.Arg {
	out := make([]hazard.Arg, len(op.Args))
	for i, a := range op.Args {
		out[i] = hazard.Arg{Handle: a.Handle, Mode: a.Mode}
	}
	return out
}
