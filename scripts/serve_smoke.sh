#!/usr/bin/env sh
# Smoke and chaos tests for the simulation daemon.
#
# Usage: serve_smoke.sh [smoke|chaos|all]   (default: smoke)
#
#   smoke — boot simd on an ephemeral port, submit a small Cholesky job
#           over HTTP, poll it to completion, check the observability
#           endpoints, then drain with SIGTERM and require a clean exit.
#   chaos — restart-recovery: boot simd with a journaled data dir, submit
#           jobs (one pinned behind a deliberately slow occupant so it is
#           still queued), SIGKILL the daemon mid-load, restart it on the
#           same data dir, and require every acknowledged job to finish
#           exactly once with a fingerprint identical to the pre-kill
#           reference.
#
# CI runs smoke in the serve-smoke job and chaos in the chaos job;
# locally: make serve-smoke. Needs only curl + sed (no jq), so it runs on
# a bare runner.
set -eu

stage="${1:-smoke}"

workdir=$(mktemp -d)
bin="$workdir/simd"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/simd

# boot <extra flags...> — start simd, wait for its address file, set $pid
# and $base.
boot() {
    addrfile="$workdir/addr"
    logfile="$workdir/simd.log"
    rm -f "$addrfile"
    "$bin" -addr 127.0.0.1:0 -addr-file "$addrfile" "$@" >"$logfile" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
        [ -s "$addrfile" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "simd died during startup"; cat "$logfile"; exit 1; }
        sleep 0.1
    done
    [ -s "$addrfile" ] || { echo "simd never published its address"; cat "$logfile"; exit 1; }
    base="http://$(cat "$addrfile")"
}

# submit <json> — POST a job spec, print its id.
submit() {
    out=$(curl -fsS -X POST "$base/jobs" -H 'Content-Type: application/json' -d "$1")
    id=$(printf '%s' "$out" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
    [ -n "$id" ] || { echo "submit returned no job id: $out" >&2; exit 1; }
    printf '%s' "$id"
}

# field <id> <key> — poll one job and print a top-level string field.
field() {
    curl -fsS "$base/jobs/$1" | sed -n 's/.*"'"$2"'":"\([^"]*\)".*/\1/p'
}

# wait_done <id> — poll a job until done (fails on failed/rejected/dead).
wait_done() {
    st=""
    for _ in $(seq 1 200); do
        doc=$(curl -fsS "$base/jobs/$1")
        st=$(printf '%s' "$doc" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
        [ "$st" = "done" ] && return 0
        case "$st" in failed|rejected|dead) echo "job $1 $st: $doc"; exit 1;; esac
        sleep 0.1
    done
    echo "job $1 stuck at '$st'"
    exit 1
}

smoke_stage() {
    boot -pool 2
    echo "simd listening on $base"

    curl -fsS "$base/healthz" >/dev/null

    id=$(submit '{"algorithm": "cholesky", "nt": 6, "nb": 8, "workers": 4, "seed": 1}')
    echo "submitted $id"
    wait_done "$id"
    doc=$(curl -fsS "$base/jobs/$id")
    printf '%s' "$doc" | grep -q '"makespan":' || { echo "done job has no makespan: $doc"; exit 1; }
    echo "job done"

    # The trace endpoints serve the virtual trace both ways. (grep without
    # -q so it drains the body; -q quits early and curl reports a broken
    # pipe.)
    curl -fsS "$base/jobs/$id/trace" | grep '"events":' >/dev/null || { echo "trace endpoint broken"; exit 1; }
    curl -fsS "$base/jobs/$id/trace.svg" | grep '<svg' >/dev/null || { echo "trace.svg endpoint broken"; exit 1; }

    # Metrics reflect the finished job.
    metrics=$(curl -fsS "$base/metrics")
    printf '%s' "$metrics" | grep -q '"done":1' || { echo "metrics missing the job: $metrics"; exit 1; }
    echo "metrics ok"

    # Graceful drain: SIGTERM must produce a clean exit.
    kill -TERM "$pid"
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "simd ignored SIGTERM"; cat "$logfile"; exit 1; }
        sleep 0.1
    done
    wait "$pid" 2>/dev/null && rc=0 || rc=$?
    pid=""
    [ "$rc" -eq 0 ] || { echo "simd exited rc=$rc after SIGTERM"; cat "$logfile"; exit 1; }
    grep -q 'drained' "$logfile" || { echo "no drain summary in the log"; cat "$logfile"; exit 1; }
    echo "serve smoke passed"
}

chaos_stage() {
    datadir="$workdir/data"

    # Reference run: finish the probe jobs cleanly and record fingerprints.
    boot -pool 2
    ref1=$(submit '{"algorithm": "cholesky", "nt": 5, "nb": 8, "workers": 4, "seed": 42}')
    ref2=$(submit '{"algorithm": "qr", "nt": 4, "nb": 8, "workers": 2, "seed": 43, "reps": 2}')
    wait_done "$ref1"; wait_done "$ref2"
    fp1=$(field "$ref1" fingerprint)
    fp2=$(field "$ref2" fingerprint)
    [ -n "$fp1" ] && [ -n "$fp2" ] || { echo "reference jobs missing fingerprints"; exit 1; }
    kill -TERM "$pid"; wait "$pid" 2>/dev/null || true; pid=""
    echo "reference fingerprints: $fp1 $fp2"

    # Durable run: pin the single pool slot with a slow stall-fault
    # occupant so the probe jobs are acknowledged but still queued, then
    # SIGKILL mid-load.
    boot -pool 1 -data-dir "$datadir"
    echo "chaos daemon on $base (data dir $datadir)"
    occ=$(submit '{"algorithm": "cholesky", "nt": 2, "nb": 8, "workers": 1, "fault": {"default": {"stall": 1}, "stall_wall_ns": 200000000}}')
    j1=$(submit '{"algorithm": "cholesky", "nt": 5, "nb": 8, "workers": 4, "seed": 42}')
    j2=$(submit '{"algorithm": "qr", "nt": 4, "nb": 8, "workers": 2, "seed": 43, "reps": 2}')
    echo "acked $occ $j1 $j2; killing with SIGKILL"
    kill -KILL "$pid"
    wait "$pid" 2>/dev/null || true
    pid=""

    # Restart on the same data dir: every acknowledged job must recover
    # and finish with the reference fingerprint.
    boot -pool 2 -data-dir "$datadir"
    grep -q 'recovered from' "$logfile" || { echo "restart did not report recovery"; cat "$logfile"; exit 1; }
    wait_done "$occ"; wait_done "$j1"; wait_done "$j2"
    rfp1=$(field "$j1" fingerprint)
    rfp2=$(field "$j2" fingerprint)
    [ "$rfp1" = "$fp1" ] || { echo "job $j1 recovered with fingerprint $rfp1, want $fp1"; exit 1; }
    [ "$rfp2" = "$fp2" ] || { echo "job $j2 recovered with fingerprint $rfp2, want $fp2"; exit 1; }

    # Exactly once: each recovered ID appears once in the job list.
    jobs=$(curl -fsS "$base/jobs")
    for id in "$occ" "$j1" "$j2"; do
        n=$(printf '%s' "$jobs" | grep -o "\"id\":\"$id\"" | wc -l)
        [ "$n" -eq 1 ] || { echo "job $id appears $n times after recovery, want 1"; exit 1; }
    done

    # The store section reports durability and the recovery counts.
    metrics=$(curl -fsS "$base/metrics")
    printf '%s' "$metrics" | grep -q '"durable":true' || { echo "metrics missing durable store: $metrics"; exit 1; }

    # Persistent capture cache: kill the daemon again and require a fresh
    # process on the same data dir to serve a repeat of a previously-
    # captured job from its .dag frame — zero capture runs, identical
    # fingerprint.
    kill -KILL "$pid"
    wait "$pid" 2>/dev/null || true
    pid=""
    boot -pool 2 -data-dir "$datadir"
    d1=$(submit '{"algorithm": "cholesky", "nt": 5, "nb": 8, "workers": 4, "seed": 42}')
    wait_done "$d1"
    dcache=$(field "$d1" cache)
    [ "$dcache" = "disk" ] || { echo "repeat job served with cache='$dcache', want disk"; exit 1; }
    dfp=$(field "$d1" fingerprint)
    [ "$dfp" = "$fp1" ] || { echo "disk-served job fingerprint $dfp, want $fp1"; exit 1; }
    metrics=$(curl -fsS "$base/metrics")
    printf '%s' "$metrics" | grep -q '"captures":0' || { echo "restarted daemon re-captured: $metrics"; exit 1; }
    echo "disk capture cache passed"

    kill -TERM "$pid"
    wait "$pid" 2>/dev/null && rc=0 || rc=$?
    pid=""
    [ "$rc" -eq 0 ] || { echo "simd exited rc=$rc after chaos drain"; cat "$logfile"; exit 1; }
    echo "chaos recovery passed"
}

case "$stage" in
smoke) smoke_stage ;;
chaos) chaos_stage ;;
all) smoke_stage; chaos_stage ;;
*) echo "usage: $0 [smoke|chaos|all]"; exit 2 ;;
esac
