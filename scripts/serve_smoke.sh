#!/usr/bin/env sh
# Smoke and chaos tests for the simulation daemon.
#
# Usage: serve_smoke.sh [smoke|chaos|cluster|all]   (default: smoke)
#
#   smoke   — boot simd on an ephemeral port, submit a small Cholesky job
#             over HTTP, poll it to completion, check the observability
#             endpoints, then drain with SIGTERM and require a clean exit.
#   chaos   — restart-recovery: boot simd with a journaled data dir, submit
#             jobs (one pinned behind a deliberately slow occupant so it is
#             still queued), SIGKILL the daemon mid-load, restart it on the
#             same data dir, and require every acknowledged job to finish
#             exactly once with a fingerprint identical to the pre-kill
#             reference.
#   cluster — scale-out: boot simcoord plus two simd workers, fan a sweep
#             across both and require the merged fingerprint to be
#             bit-identical to a single-node run; restart the workers and
#             require a repeat job to be served from the owning worker's
#             disk frame with zero captures cluster-wide; SIGKILL a worker
#             mid-sweep and require the re-dispatched result to carry the
#             identical fingerprint.
#
# CI runs smoke in the serve-smoke job, chaos in the chaos job and cluster
# in the cluster job; locally: make serve-smoke / make cluster-smoke.
# Needs only curl + sed (no jq), so it runs on a bare runner.
set -eu

stage="${1:-smoke}"

workdir=$(mktemp -d)
bin="$workdir/simd"
pid=""
extra_pids=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    for p in $extra_pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/simd

# boot <extra flags...> — start simd, wait for its address file, set $pid
# and $base.
boot() {
    addrfile="$workdir/addr"
    logfile="$workdir/simd.log"
    rm -f "$addrfile"
    "$bin" -addr 127.0.0.1:0 -addr-file "$addrfile" "$@" >"$logfile" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
        [ -s "$addrfile" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "simd died during startup"; cat "$logfile"; exit 1; }
        sleep 0.1
    done
    [ -s "$addrfile" ] || { echo "simd never published its address"; cat "$logfile"; exit 1; }
    base="http://$(cat "$addrfile")"
}

# submit <json> — POST a job spec, print its id.
submit() {
    out=$(curl -fsS -X POST "$base/jobs" -H 'Content-Type: application/json' -d "$1")
    id=$(printf '%s' "$out" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
    [ -n "$id" ] || { echo "submit returned no job id: $out" >&2; exit 1; }
    printf '%s' "$id"
}

# field <id> <key> — poll one job and print a top-level string field.
field() {
    curl -fsS "$base/jobs/$1" | sed -n 's/.*"'"$2"'":"\([^"]*\)".*/\1/p'
}

# wait_done <id> — poll a job until done (fails on failed/rejected/dead).
wait_done() {
    st=""
    for _ in $(seq 1 200); do
        doc=$(curl -fsS "$base/jobs/$1")
        st=$(printf '%s' "$doc" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
        [ "$st" = "done" ] && return 0
        case "$st" in failed|rejected|dead) echo "job $1 $st: $doc"; exit 1;; esac
        sleep 0.1
    done
    echo "job $1 stuck at '$st'"
    exit 1
}

smoke_stage() {
    boot -pool 2
    echo "simd listening on $base"

    curl -fsS "$base/healthz" >/dev/null

    id=$(submit '{"algorithm": "cholesky", "nt": 6, "nb": 8, "workers": 4, "seed": 1}')
    echo "submitted $id"
    wait_done "$id"
    doc=$(curl -fsS "$base/jobs/$id")
    printf '%s' "$doc" | grep -q '"makespan":' || { echo "done job has no makespan: $doc"; exit 1; }
    echo "job done"

    # The trace endpoints serve the virtual trace both ways. (grep without
    # -q so it drains the body; -q quits early and curl reports a broken
    # pipe.)
    curl -fsS "$base/jobs/$id/trace" | grep '"events":' >/dev/null || { echo "trace endpoint broken"; exit 1; }
    curl -fsS "$base/jobs/$id/trace.svg" | grep '<svg' >/dev/null || { echo "trace.svg endpoint broken"; exit 1; }

    # Metrics reflect the finished job.
    metrics=$(curl -fsS "$base/metrics")
    printf '%s' "$metrics" | grep -q '"done":1' || { echo "metrics missing the job: $metrics"; exit 1; }
    echo "metrics ok"

    # Graceful drain: SIGTERM must produce a clean exit.
    kill -TERM "$pid"
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "simd ignored SIGTERM"; cat "$logfile"; exit 1; }
        sleep 0.1
    done
    wait "$pid" 2>/dev/null && rc=0 || rc=$?
    pid=""
    [ "$rc" -eq 0 ] || { echo "simd exited rc=$rc after SIGTERM"; cat "$logfile"; exit 1; }
    grep -q 'drained' "$logfile" || { echo "no drain summary in the log"; cat "$logfile"; exit 1; }
    echo "serve smoke passed"
}

chaos_stage() {
    datadir="$workdir/data"

    # Reference run: finish the probe jobs cleanly and record fingerprints.
    boot -pool 2
    ref1=$(submit '{"algorithm": "cholesky", "nt": 5, "nb": 8, "workers": 4, "seed": 42}')
    ref2=$(submit '{"algorithm": "qr", "nt": 4, "nb": 8, "workers": 2, "seed": 43, "reps": 2}')
    wait_done "$ref1"; wait_done "$ref2"
    fp1=$(field "$ref1" fingerprint)
    fp2=$(field "$ref2" fingerprint)
    [ -n "$fp1" ] && [ -n "$fp2" ] || { echo "reference jobs missing fingerprints"; exit 1; }
    kill -TERM "$pid"; wait "$pid" 2>/dev/null || true; pid=""
    echo "reference fingerprints: $fp1 $fp2"

    # Durable run: pin the single pool slot with a slow stall-fault
    # occupant so the probe jobs are acknowledged but still queued, then
    # SIGKILL mid-load.
    boot -pool 1 -data-dir "$datadir"
    echo "chaos daemon on $base (data dir $datadir)"
    occ=$(submit '{"algorithm": "cholesky", "nt": 2, "nb": 8, "workers": 1, "fault": {"default": {"stall": 1}, "stall_wall_ns": 200000000}}')
    j1=$(submit '{"algorithm": "cholesky", "nt": 5, "nb": 8, "workers": 4, "seed": 42}')
    j2=$(submit '{"algorithm": "qr", "nt": 4, "nb": 8, "workers": 2, "seed": 43, "reps": 2}')
    echo "acked $occ $j1 $j2; killing with SIGKILL"
    kill -KILL "$pid"
    wait "$pid" 2>/dev/null || true
    pid=""

    # Restart on the same data dir: every acknowledged job must recover
    # and finish with the reference fingerprint.
    boot -pool 2 -data-dir "$datadir"
    grep -q 'recovered from' "$logfile" || { echo "restart did not report recovery"; cat "$logfile"; exit 1; }
    wait_done "$occ"; wait_done "$j1"; wait_done "$j2"
    rfp1=$(field "$j1" fingerprint)
    rfp2=$(field "$j2" fingerprint)
    [ "$rfp1" = "$fp1" ] || { echo "job $j1 recovered with fingerprint $rfp1, want $fp1"; exit 1; }
    [ "$rfp2" = "$fp2" ] || { echo "job $j2 recovered with fingerprint $rfp2, want $fp2"; exit 1; }

    # Exactly once: each recovered ID appears once in the job list.
    jobs=$(curl -fsS "$base/jobs")
    for id in "$occ" "$j1" "$j2"; do
        n=$(printf '%s' "$jobs" | grep -o "\"id\":\"$id\"" | wc -l)
        [ "$n" -eq 1 ] || { echo "job $id appears $n times after recovery, want 1"; exit 1; }
    done

    # The store section reports durability and the recovery counts.
    metrics=$(curl -fsS "$base/metrics")
    printf '%s' "$metrics" | grep -q '"durable":true' || { echo "metrics missing durable store: $metrics"; exit 1; }

    # Persistent capture cache: kill the daemon again and require a fresh
    # process on the same data dir to serve a repeat of a previously-
    # captured job from its .dag frame — zero capture runs, identical
    # fingerprint.
    kill -KILL "$pid"
    wait "$pid" 2>/dev/null || true
    pid=""
    boot -pool 2 -data-dir "$datadir"
    d1=$(submit '{"algorithm": "cholesky", "nt": 5, "nb": 8, "workers": 4, "seed": 42}')
    wait_done "$d1"
    dcache=$(field "$d1" cache)
    [ "$dcache" = "disk" ] || { echo "repeat job served with cache='$dcache', want disk"; exit 1; }
    dfp=$(field "$d1" fingerprint)
    [ "$dfp" = "$fp1" ] || { echo "disk-served job fingerprint $dfp, want $fp1"; exit 1; }
    metrics=$(curl -fsS "$base/metrics")
    printf '%s' "$metrics" | grep -q '"captures":0' || { echo "restarted daemon re-captured: $metrics"; exit 1; }
    echo "disk capture cache passed"

    kill -TERM "$pid"
    wait "$pid" 2>/dev/null && rc=0 || rc=$?
    pid=""
    [ "$rc" -eq 0 ] || { echo "simd exited rc=$rc after chaos drain"; cat "$logfile"; exit 1; }
    echo "chaos recovery passed"
}

# --- cluster helpers -------------------------------------------------

ckey="smoke-cluster-key"

# wait_pid_file <file> <log> — wait for an address file to appear.
wait_addr() {
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "no address file $1"; cat "$2"; exit 1
}

# cboot — start simcoord on an ephemeral port; sets $cpid and $coord.
cboot() {
    rm -f "$workdir/coord.addr"
    "$workdir/simcoord" -addr 127.0.0.1:0 -addr-file "$workdir/coord.addr" \
        -cluster-key "$ckey" -heartbeat 250ms -heartbeat-timeout 1200ms -poll 100ms \
        >"$workdir/coord.log" 2>&1 &
    cpid=$!
    extra_pids="$extra_pids $cpid"
    wait_addr "$workdir/coord.addr" "$workdir/coord.log"
    coord="http://$(cat "$workdir/coord.addr")"
}

# wboot <n> — start cluster worker w<n> with a persistent data dir;
# prints its PID.
wboot() {
    rm -f "$workdir/w$1.addr"
    "$bin" -addr 127.0.0.1:0 -addr-file "$workdir/w$1.addr" -pool 2 \
        -data-dir "$workdir/w$1.data" -coordinator "$coord" \
        -cluster-key "$ckey" -worker-name "w$1" \
        >>"$workdir/w$1.log" 2>&1 &
    wpid=$!
    extra_pids="$extra_pids $wpid"
    wait_addr "$workdir/w$1.addr" "$workdir/w$1.log"
    printf '%s' "$wpid"
}

# wait_live <n> — poll the coordinator until n workers are live.
wait_live() {
    for _ in $(seq 1 100); do
        curl -fsS "$coord/healthz" | grep -q "\"live\":$1" && return 0
        sleep 0.1
    done
    echo "cluster never reached $1 live workers: $(curl -fsS "$coord/healthz")"
    exit 1
}

# csubmit <json> — submit a job to the coordinator, print the dispatch id.
csubmit() {
    out=$(curl -fsS -X POST "$coord/jobs" -H 'Content-Type: application/json' -d "$1")
    id=$(printf '%s' "$out" | sed -n 's/.*"id":"\(d-[0-9]*\)".*/\1/p')
    [ -n "$id" ] || { echo "cluster submit returned no dispatch id: $out" >&2; exit 1; }
    printf '%s' "$id"
}

# cwait_done <id> — poll a dispatch until done (fails on failed).
cwait_done() {
    st=""
    for _ in $(seq 1 300); do
        doc=$(curl -fsS "$coord/jobs/$1")
        st=$(printf '%s' "$doc" | sed -n 's/^{"id":"[^"]*","status":"\([^"]*\)".*/\1/p')
        [ "$st" = "done" ] && return 0
        [ "$st" = "failed" ] && { echo "dispatch $1 failed: $doc"; exit 1; }
        sleep 0.1
    done
    echo "dispatch $1 stuck at '$st': $(curl -fsS "$coord/jobs/$1")"
    exit 1
}

# cfp <id> — print a finished dispatch's merged fingerprint.
cfp() {
    curl -fsS "$coord/jobs/$1" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p'
}

cluster_stage() {
    go build -o "$workdir/simcoord" ./cmd/simcoord

    sweep_a='{"kind":"sweep","algorithm":"cholesky","max_nt":6,"nb":8,"workers":4,"seed":9,"reps":4}'
    sweep_b='{"kind":"sweep","algorithm":"qr","max_nt":6,"nb":8,"workers":4,"seed":31,"reps":4}'
    simjob='{"algorithm":"qr","nt":5,"nb":8,"workers":2,"seed":17}'

    # Reference fingerprints from a plain single-node run.
    boot -pool 2
    r1=$(submit "$sweep_a"); r2=$(submit "$sweep_b"); r3=$(submit "$simjob")
    wait_done "$r1"; wait_done "$r2"; wait_done "$r3"
    ref_a=$(field "$r1" fingerprint)
    ref_b=$(field "$r2" fingerprint)
    ref_j=$(field "$r3" fingerprint)
    [ -n "$ref_a" ] && [ -n "$ref_b" ] && [ -n "$ref_j" ] || { echo "reference run missing fingerprints"; exit 1; }
    kill -TERM "$pid"; wait "$pid" 2>/dev/null || true; pid=""
    echo "single-node references: $ref_a $ref_b $ref_j"

    cboot
    echo "simcoord on $coord"
    w1=$(wboot 1)
    w2=$(wboot 2)
    wait_live 2

    # Fan-out: the sweep splits across both workers, and the merged
    # statistics are bit-identical to the single-node run.
    d1=$(csubmit "$sweep_a")
    cwait_done "$d1"
    doc=$(curl -fsS "$coord/jobs/$d1")
    printf '%s' "$doc" | grep -q '"rep_stride":2' || { echo "sweep was not fanned out: $doc"; exit 1; }
    fp=$(cfp "$d1")
    [ "$fp" = "$ref_a" ] || { echo "fanned sweep fingerprint $fp, want $ref_a"; exit 1; }
    echo "fan-out fingerprint identical"

    # Cache routing: a cacheable job is captured once on its ring owner;
    # after both workers restart, the repeat routed through the
    # coordinator is served from the owner's disk frame — zero captures
    # across the whole cluster.
    d2=$(csubmit "$simjob")
    cwait_done "$d2"
    [ "$(cfp "$d2")" = "$ref_j" ] || { echo "cluster job fingerprint $(cfp "$d2"), want $ref_j"; exit 1; }
    kill -TERM "$w1" "$w2"
    while kill -0 "$w1" 2>/dev/null || kill -0 "$w2" 2>/dev/null; do sleep 0.1; done
    w1=$(wboot 1)
    w2=$(wboot 2)
    wait_live 2
    d3=$(csubmit "$simjob")
    cwait_done "$d3"
    [ "$(cfp "$d3")" = "$ref_j" ] || { echo "repeat job fingerprint $(cfp "$d3"), want $ref_j"; exit 1; }
    metrics=$(curl -fsS "$coord/metrics")
    printf '%s' "$metrics" | grep -q '"captures":0' || { echo "repeat job re-captured after restart: $metrics"; exit 1; }
    printf '%s' "$metrics" | grep -q '"disk_hits":1' || { echo "repeat job missed the disk frame: $metrics"; exit 1; }
    echo "restarted cluster served the repeat from the disk frame (captures 0)"

    # Failover: kill a worker right after a fresh sweep is accepted; its
    # slice is re-dispatched onto the survivor and the merged result is
    # still bit-identical.
    d4=$(csubmit "$sweep_b")
    kill -KILL "$w2"
    cwait_done "$d4"
    fp=$(cfp "$d4")
    [ "$fp" = "$ref_b" ] || { echo "failover sweep fingerprint $fp, want $ref_b"; exit 1; }
    metrics=$(curl -fsS "$coord/metrics")
    printf '%s' "$metrics" | grep -q '"failovers":[1-9]' || { echo "no failover recorded: $metrics"; exit 1; }
    printf '%s' "$metrics" | grep -q '"mismatches":0' || { echo "fingerprint mismatch across attempts: $metrics"; exit 1; }
    echo "failover re-dispatch fingerprint identical"

    kill -TERM "$w1" 2>/dev/null || true
    kill -TERM "$cpid" 2>/dev/null || true
    echo "cluster smoke passed"
}

case "$stage" in
smoke) smoke_stage ;;
chaos) chaos_stage ;;
cluster) cluster_stage ;;
all) smoke_stage; chaos_stage; cluster_stage ;;
*) echo "usage: $0 [smoke|chaos|cluster|all]"; exit 2 ;;
esac
