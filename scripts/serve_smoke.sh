#!/usr/bin/env sh
# Smoke test for the simulation daemon: boot simd on an ephemeral port,
# submit a small Cholesky job over HTTP, poll it to completion, check the
# observability endpoints, then drain with SIGTERM and require a clean
# exit. CI runs this in the serve-smoke step; locally: make serve-smoke.
#
# Needs only curl + sed (no jq), so it runs on a bare runner.
set -eu

workdir=$(mktemp -d)
bin="$workdir/simd"
addrfile="$workdir/addr"
logfile="$workdir/simd.log"

cleanup() {
    kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}

go build -o "$bin" ./cmd/simd

"$bin" -addr 127.0.0.1:0 -addr-file "$addrfile" -pool 2 >"$logfile" 2>&1 &
pid=$!
trap cleanup EXIT

# Wait for the daemon to write its bound address.
for _ in $(seq 1 100); do
    [ -s "$addrfile" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "simd died during startup"; cat "$logfile"; exit 1; }
    sleep 0.1
done
[ -s "$addrfile" ] || { echo "simd never published its address"; cat "$logfile"; exit 1; }
base="http://$(cat "$addrfile")"
echo "simd listening on $base"

curl -fsS "$base/healthz" >/dev/null

# Submit a small Cholesky job and pull the id out of the 202 body.
job=$(curl -fsS -X POST "$base/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"algorithm": "cholesky", "nt": 6, "nb": 8, "workers": 4, "seed": 1}')
id=$(printf '%s' "$job" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "submit returned no job id: $job"; exit 1; }
echo "submitted $id"

# Poll to completion.
status=""
for _ in $(seq 1 100); do
    doc=$(curl -fsS "$base/jobs/$id")
    status=$(printf '%s' "$doc" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
    [ "$status" = "done" ] && break
    case "$status" in failed|rejected) echo "job $status: $doc"; exit 1;; esac
    sleep 0.1
done
[ "$status" = "done" ] || { echo "job stuck at '$status'"; exit 1; }
printf '%s' "$doc" | grep -q '"makespan":' || { echo "done job has no makespan: $doc"; exit 1; }
echo "job done"

# The trace endpoints serve the virtual trace both ways. (grep without -q
# so it drains the body; -q quits early and curl reports a broken pipe.)
curl -fsS "$base/jobs/$id/trace" | grep '"events":' >/dev/null || { echo "trace endpoint broken"; exit 1; }
curl -fsS "$base/jobs/$id/trace.svg" | grep '<svg' >/dev/null || { echo "trace.svg endpoint broken"; exit 1; }

# Metrics reflect the finished job.
metrics=$(curl -fsS "$base/metrics")
printf '%s' "$metrics" | grep -q '"done":1' || { echo "metrics missing the job: $metrics"; exit 1; }
echo "metrics ok"

# Graceful drain: SIGTERM must produce a clean exit.
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "simd ignored SIGTERM"; cat "$logfile"; exit 1; }
    sleep 0.1
done
wait "$pid" 2>/dev/null && rc=0 || rc=$?
[ "$rc" -eq 0 ] || { echo "simd exited rc=$rc after SIGTERM"; cat "$logfile"; exit 1; }
grep -q 'drained' "$logfile" || { echo "no drain summary in the log"; cat "$logfile"; exit 1; }
echo "serve smoke passed"
