// Command simbench runs the repository's hot-path micro-benchmarks
// (task insertion, end-to-end task churn, the simulated-task queue
// protocol) outside the `go test` harness and writes the results as JSON,
// together with the contention-counter profile accumulated during the run
// (wakeups, parks, quiescence kicks — see internal/perf).
//
// The benchmark-regression workflow:
//
//	simbench -o BENCH_simbench.json                  # record current numbers
//	simbench -baseline BENCH_simbench.json -check 10 # fail on >10% regression
//	simbench -compare BENCH_simbench.json            # shorthand for the above
//
// A baseline file is simply a previous simbench output; the comparison
// block in the new output records baseline, current and delta per
// benchmark (negative delta = faster). CI runs the same suite via
// `go test -bench 'Insert|SimTask|Churn'` and archives this tool's JSON
// as the artifact benchstat comparisons start from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"testing"

	"supersim/internal/bench"
	"supersim/internal/perf"
)

type report struct {
	GoVersion string              `json:"go_version"`
	GOOS      string              `json:"goos"`
	GOARCH    string              `json:"goarch"`
	CPUs      int                 `json:"cpus"`
	Benchtime string              `json:"benchtime"`
	Results   []bench.MicroResult `json:"results"`
	// Contention is the perf-counter profile summed over the whole run.
	Contention *perf.Snapshot `json:"contention,omitempty"`
	// Comparison is present when -baseline was given.
	Comparison []comparison `json:"comparison,omitempty"`
}

type comparison struct {
	Name            string  `json:"name"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	CurrentNsPerOp  float64 `json:"current_ns_per_op"`
	// DeltaPct is (current - baseline) / baseline * 100; negative = faster.
	DeltaPct float64 `json:"delta_pct"`
	// BaselineMissing marks a benchmark absent from the baseline file — a
	// newly added entry. Never counted as a regression: the first run after
	// adding a benchmark records its number instead of failing the gate.
	BaselineMissing bool `json:"baseline_missing,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("simbench: ")
	testing.Init() // register the testing flags so -test.benchtime exists
	var (
		out          = flag.String("o", "BENCH_simbench.json", "output JSON path (- for stdout)")
		benchtime    = flag.String("benchtime", "1s", "per-benchmark measuring time (as in go test -benchtime)")
		baselinePath = flag.String("baseline", "", "previous simbench JSON to compare against")
		check        = flag.Float64("check", 0, "with -baseline: exit non-zero if any benchmark regresses by more than this percent")
		run          = flag.String("run", "", "regexp selecting benchmarks by name (default: all)")
		contention   = flag.Bool("contention", true, "collect and emit the contention-counter profile")
		compare      = flag.String("compare", "", "regression gate: -baseline PATH with -check 10 (unless -check is set)")
		parallelism  = flag.Int("parallelism", 0, "cap the ReplayParallelN benchmarks at this degree (0 = run all)")
	)
	flag.Parse()
	if *compare != "" {
		if *baselinePath != "" && *baselinePath != *compare {
			log.Fatal("-compare and -baseline disagree; use one")
		}
		*baselinePath = *compare
		if *check == 0 {
			*check = 10
		}
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatalf("invalid -benchtime %q: %v", *benchtime, err)
	}
	var filter *regexp.Regexp
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			log.Fatalf("invalid -run %q: %v", *run, err)
		}
		filter = re
	}
	if *check > 0 && *baselinePath == "" {
		log.Fatal("-check requires -baseline")
	}

	var counters *perf.Counters
	if *contention {
		counters = &perf.Counters{}
	}
	results := bench.RunMicroMax(filter, counters, *parallelism)
	if len(results) == 0 {
		log.Fatalf("no benchmarks match -run %q", *run)
	}
	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Benchtime: *benchtime,
		Results:   results,
	}
	if counters != nil {
		snap := counters.Snapshot()
		rep.Contention = &snap
	}

	var outcome compareOutcome
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
		outcome = compareAgainstBaseline(results, base, *check, os.Stderr)
		rep.Comparison = outcome.Comparison
	}
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "%-28s %12d iters %10.1f ns/op %8d B/op %4d allocs/op\n",
			r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("write %s: %v", *out, err)
	}
	outcome.summarizeMissing(os.Stderr, *baselinePath)
	if outcome.Regressions > 0 {
		log.Fatalf("%d benchmark(s) regressed more than %.1f%% vs %s", outcome.Regressions, *check, *baselinePath)
	}
}

// loadBaseline reads a previous simbench report and indexes ns/op by name.
func loadBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	out := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Name] = r.NsPerOp
	}
	return out, nil
}
