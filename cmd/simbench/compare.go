package main

import (
	"fmt"
	"io"
	"strings"

	"supersim/internal/bench"
)

// compareOutcome is the result of gating one run against a baseline
// file: the per-benchmark comparison block for the JSON report, plus
// the counts the exit status and the end-of-run summary are built from.
type compareOutcome struct {
	Comparison []comparison
	// Regressions counts benchmarks whose DeltaPct exceeds the gate
	// (check <= 0 disables the gate and leaves this zero).
	Regressions int
	// MissingNames lists benchmarks absent from the baseline file, in
	// run order. They are recorded in Comparison with BaselineMissing
	// set but never gated: the first run after adding a benchmark
	// records its number instead of failing.
	MissingNames []string
}

// compareAgainstBaseline compares every result against the baseline
// ns/op map, writing one human-readable line per benchmark to w.
func compareAgainstBaseline(results []bench.MicroResult, base map[string]float64, check float64, w io.Writer) compareOutcome {
	var out compareOutcome
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok {
			out.Comparison = append(out.Comparison, comparison{
				Name: r.Name, CurrentNsPerOp: r.NsPerOp, BaselineMissing: true,
			})
			out.MissingNames = append(out.MissingNames, r.Name)
			fmt.Fprintf(w, "%-28s   baseline missing -> %10.1f ns/op  (new benchmark)\n", r.Name, r.NsPerOp)
			continue
		}
		delta := (r.NsPerOp - b) / b * 100
		out.Comparison = append(out.Comparison, comparison{
			Name: r.Name, BaselineNsPerOp: b, CurrentNsPerOp: r.NsPerOp, DeltaPct: delta,
		})
		fmt.Fprintf(w, "%-28s %10.1f -> %10.1f ns/op  (%+.1f%%)\n", r.Name, b, r.NsPerOp, delta)
		if check > 0 && delta > check {
			out.Regressions++
		}
	}
	return out
}

// summarizeMissing writes the end-of-run tally of benchmarks the
// baseline file does not know about, so a stale baseline is visible in
// one line instead of being scattered through the per-benchmark output.
// No-op when nothing is missing.
func (o compareOutcome) summarizeMissing(w io.Writer, baselinePath string) {
	if len(o.MissingNames) == 0 {
		return
	}
	fmt.Fprintf(w, "simbench: %d benchmark(s) missing from baseline %s (recorded, not gated): %s\n",
		len(o.MissingNames), baselinePath, strings.Join(o.MissingNames, ", "))
}
