package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supersim/internal/bench"
)

func TestCompareAgainstBaseline(t *testing.T) {
	results := []bench.MicroResult{
		{Name: "Insert", NsPerOp: 120},  // +20% over baseline: regression
		{Name: "Churn", NsPerOp: 95},    // -5%: improvement
		{Name: "Replay4", NsPerOp: 50},  // not in baseline
		{Name: "Replay8", NsPerOp: 60},  // not in baseline
		{Name: "SimTask", NsPerOp: 105}, // +5%: within the gate
	}
	base := map[string]float64{"Insert": 100, "Churn": 100, "SimTask": 100}

	var buf bytes.Buffer
	out := compareAgainstBaseline(results, base, 10, &buf)

	if out.Regressions != 1 {
		t.Errorf("Regressions = %d, want 1 (only Insert exceeds the 10%% gate)", out.Regressions)
	}
	if want := []string{"Replay4", "Replay8"}; strings.Join(out.MissingNames, ",") != strings.Join(want, ",") {
		t.Errorf("MissingNames = %v, want %v", out.MissingNames, want)
	}
	if len(out.Comparison) != len(results) {
		t.Fatalf("Comparison has %d entries, want %d (missing baselines are still recorded)",
			len(out.Comparison), len(results))
	}
	for _, c := range out.Comparison {
		missing := c.Name == "Replay4" || c.Name == "Replay8"
		if c.BaselineMissing != missing {
			t.Errorf("%s: BaselineMissing = %v, want %v", c.Name, c.BaselineMissing, missing)
		}
	}
	if d := out.Comparison[0].DeltaPct; math.Abs(d-20) > 1e-9 {
		t.Errorf("Insert DeltaPct = %v, want 20", d)
	}
	if got := buf.String(); !strings.Contains(got, "baseline missing") {
		t.Errorf("per-benchmark output lacks a 'baseline missing' line:\n%s", got)
	}
}

func TestCompareAgainstBaselineGateDisabled(t *testing.T) {
	results := []bench.MicroResult{{Name: "Insert", NsPerOp: 500}}
	out := compareAgainstBaseline(results, map[string]float64{"Insert": 100}, 0, &bytes.Buffer{})
	if out.Regressions != 0 {
		t.Errorf("Regressions = %d with check=0, want 0 (gate disabled)", out.Regressions)
	}
}

func TestSummarizeMissing(t *testing.T) {
	out := compareOutcome{MissingNames: []string{"Replay4", "Replay8"}}
	var buf bytes.Buffer
	out.summarizeMissing(&buf, "BENCH_simbench.json")
	got := buf.String()
	for _, want := range []string{"2 benchmark(s) missing", "BENCH_simbench.json", "Replay4, Replay8", "not gated"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary %q lacks %q", got, want)
		}
	}

	buf.Reset()
	compareOutcome{}.summarizeMissing(&buf, "BENCH_simbench.json")
	if buf.Len() != 0 {
		t.Errorf("summary with nothing missing should be silent, got %q", buf.String())
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	rep := report{Results: []bench.MicroResult{{Name: "Insert", NsPerOp: 42.5}}}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}
	if base["Insert"] != 42.5 {
		t.Errorf("base[Insert] = %v, want 42.5", base["Insert"])
	}

	if _, err := loadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("loadBaseline on a missing file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Errorf("loadBaseline on malformed JSON: err = %v, want parse error", err)
	}
}
