// Command simd is the simulation-as-a-service daemon: it serves the
// paper's simulator over HTTP. Jobs are JSON workload specs (algorithm,
// tile counts, scheduler policy, duration model, seeds, optional fault
// plan) run on a bounded worker pool with admission control; repeated
// workloads are answered through the capture cache and the replay fast
// path without touching the scheduler.
//
// Usage:
//
//	go run ./cmd/simd -addr 127.0.0.1:8080
//
// Endpoints:
//
//	POST /jobs            submit a job spec, returns 202 + job document
//	GET  /jobs            list retained jobs
//	GET  /jobs/{id}       poll one job
//	GET  /jobs/{id}/trace      virtual trace as JSON
//	GET  /jobs/{id}/trace.svg  virtual trace as an SVG Gantt chart
//	GET  /healthz         liveness and drain state
//	GET  /metrics         job/cache/latency/contention counters
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs complete, queued jobs
// are rejected as retryable, then the HTTP listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"supersim/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
	pool := flag.Int("pool", 2, "concurrent job runners")
	queueDepth := flag.Int("queue", 64, "submission queue depth (admission control bound)")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-job wall-clock deadline")
	cacheCap := flag.Int("cache", 64, "capture cache capacity (DAG count)")
	retain := flag.Int("retain", 256, "finished jobs retained for polling")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs at shutdown")
	flag.Parse()

	srv := server.New(server.Config{
		Pool:          *pool,
		QueueDepth:    *queueDepth,
		JobDeadline:   *deadline,
		CacheCapacity: *cacheCap,
		RetainJobs:    *retain,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("simd: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			log.Fatalf("simd: writing addr file: %v", err)
		}
	}
	log.Printf("simd: serving on %s (pool=%d queue=%d deadline=%v)", bound, *pool, *queueDepth, *deadline)

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("simd: %v: draining (in-flight jobs complete, queued jobs are rejected)", sig)
	case err := <-errCh:
		log.Fatalf("simd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("simd: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("simd: http shutdown: %v", err)
	}
	m := srv.Metrics()
	fmt.Printf("simd: drained: %d done, %d failed, %d rejected; cache %d hits / %d misses / %d captures\n",
		m.Jobs.Done, m.Jobs.Failed, m.Jobs.Rejected, m.Cache.Hits, m.Cache.Misses, m.Cache.Captures)
}
