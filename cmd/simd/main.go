// Command simd is the simulation-as-a-service daemon: it serves the
// paper's simulator over HTTP. Jobs are JSON workload specs (algorithm,
// tile counts, scheduler policy, duration model, seeds, optional fault
// plan) run on a bounded worker pool with admission control; repeated
// workloads are answered through the capture cache and the replay fast
// path without touching the scheduler.
//
// Usage:
//
//	go run ./cmd/simd -addr 127.0.0.1:8080 -data-dir /var/lib/simd
//
// Endpoints:
//
//	POST /jobs            submit a job spec, returns 202 + job document
//	GET  /jobs            list retained jobs
//	GET  /jobs/{id}       poll one job
//	GET  /jobs/{id}/trace      virtual trace as JSON
//	GET  /jobs/{id}/trace.svg  virtual trace as an SVG Gantt chart
//	POST   /crons         register a recurring job template
//	GET    /crons         list recurring templates
//	GET    /crons/{id}    poll one template
//	DELETE /crons/{id}    remove a template
//	GET  /healthz         liveness and drain state
//	GET  /metrics         job/tenant/store/cache/latency counters
//
// With -data-dir, acknowledged jobs are journaled (fsync-on-accept) and
// recovered exactly once after a crash or restart. With -tenants-file,
// submissions are authenticated by API key and subject to per-tenant rate
// limits, queue shares and DRR fairness weights.
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs complete, queued jobs
// are re-queued into the journal (or rejected as retryable without one),
// then the HTTP listener closes. A SIGKILL converges to the same state on
// the next boot via journal recovery.
//
// With -coordinator (plus -cluster-key), simd additionally joins a
// simcoord cluster: it registers itself, heartbeats on a jittered
// interval, and serves captured DAG frames to authenticated peers over
// GET /internal/frames so repeat jobs rerouted by the coordinator skip
// re-capture.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"supersim/internal/cluster"
	"supersim/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
	pool := flag.Int("pool", 2, "concurrent job runners")
	queueDepth := flag.Int("queue", 64, "submission queue depth (admission control bound)")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-job wall-clock deadline")
	cacheCap := flag.Int("cache", 64, "capture cache capacity per tenant (DAG count)")
	retain := flag.Int("retain", 256, "finished jobs retained for polling")
	dataDir := flag.String("data-dir", "", "journal directory; empty = in-memory only (no crash recovery)")
	tenantsFile := flag.String("tenants-file", "", "JSON tenants file (API keys, rate limits, queue shares, weights)")
	retryMax := flag.Int("retry-max", 2, "backoff re-runs for transiently failed jobs before dead-letter (negative disables)")
	retryBase := flag.Duration("retry-base", 250*time.Millisecond, "first retry backoff (doubles per attempt, jittered)")
	compactEvery := flag.Int("compact-every", 256, "journal finish records between compactions")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs at shutdown")
	coordinator := flag.String("coordinator", "", "simcoord base URL; empty = standalone (no cluster)")
	clusterKey := flag.String("cluster-key", "", "shared cluster secret (required with -coordinator; enables the peer frame endpoint)")
	workerName := flag.String("worker-name", "", "stable worker identity on the ring (default: hostname)")
	advertiseURL := flag.String("advertise-url", "", "URL peers and the coordinator reach this worker at (default: http://<bound addr>)")
	flag.Parse()

	if *coordinator != "" && *clusterKey == "" {
		log.Fatal("simd: -coordinator requires -cluster-key")
	}

	cfg := server.Config{
		Pool:          *pool,
		QueueDepth:    *queueDepth,
		JobDeadline:   *deadline,
		CacheCapacity: *cacheCap,
		RetainJobs:    *retain,
		DataDir:       *dataDir,
		RetryMax:      *retryMax,
		RetryBase:     *retryBase,
		CompactEvery:  *compactEvery,
		ClusterKey:    *clusterKey,
	}
	if *tenantsFile != "" {
		tenants, err := server.LoadTenants(*tenantsFile)
		if err != nil {
			log.Fatalf("simd: %v", err)
		}
		cfg.Tenants = tenants
		log.Printf("simd: %d tenants loaded from %s", len(tenants), *tenantsFile)
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	if requeued, restored := srv.Recovered(); requeued > 0 || restored > 0 {
		log.Printf("simd: recovered from %s: %d jobs re-queued, %d finished jobs restored", *dataDir, requeued, restored)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("simd: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			log.Fatalf("simd: writing addr file: %v", err)
		}
	}
	log.Printf("simd: serving on %s (pool=%d queue=%d deadline=%v durable=%v)", bound, *pool, *queueDepth, *deadline, *dataDir != "")

	agentCtx, agentStop := context.WithCancel(context.Background())
	defer agentStop()
	if *coordinator != "" {
		name := *workerName
		if name == "" {
			if host, err := os.Hostname(); err == nil && host != "" {
				name = host
			} else {
				name = bound
			}
		}
		selfURL := *advertiseURL
		if selfURL == "" {
			selfURL = "http://" + bound
		}
		agent := &cluster.Agent{
			Coordinator: *coordinator,
			Key:         *clusterKey,
			Name:        name,
			URL:         selfURL,
		}
		log.Printf("simd: joining cluster at %s as %q (%s)", *coordinator, name, selfURL)
		go func() {
			if err := agent.Run(agentCtx); err != nil && agentCtx.Err() == nil {
				log.Printf("simd: cluster agent: %v", err)
			}
		}()
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("simd: %v: draining (in-flight jobs complete, queued jobs are re-queued)", sig)
		agentStop() // stop heartbeating so the coordinator fails over promptly
	case err := <-errCh:
		log.Fatalf("simd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("simd: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("simd: http shutdown: %v", err)
	}
	m := srv.Metrics()
	fmt.Printf("simd: drained: %d done, %d failed, %d dead, %d rejected; cache %d hits / %d misses / %d captures; journal seq %d\n",
		m.Jobs.Done, m.Jobs.Failed, m.Jobs.Dead, m.Jobs.Rejected, m.Cache.Hits, m.Cache.Misses, m.Cache.Captures, m.Store.Seq)
}
