// Command simrace regenerates the paper's Fig. 5: the scheduling race
// condition. It runs the two-core, three-task scenario (A and B start
// together, C depends on A) many times under each wait policy and reports
// how often C's virtual start time drifted from A's completion time — the
// trace corruption the Task-Execution-Queue race causes, and which the
// quiescence query (the fix added to QUARK) eliminates.
//
// Usage:
//
//	simrace -trials 200 -sched quark
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"supersim/internal/bench"
	"supersim/internal/core"
	"supersim/internal/fault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simrace: ")
	var (
		trials  = flag.Int("trials", 200, "trials per policy")
		sched   = flag.String("sched", "quark", "scheduler: quark, starpu or ompss")
		timeout = flag.Duration("timeout", 30*time.Second,
			"wall-clock watchdog per trial; a raced trial that wedges is aborted\n"+
				"with a diagnostic dump instead of hanging (0 disables)")
	)
	flag.Parse()

	fmt.Println("Fig. 5 scenario: 2 cores; A(1.0s) and B(1.5s) start at t=0; C(1.0s) depends on A.")
	fmt.Println("correct trace: C starts at 1.0, makespan 2.0; raced trace: C starts at 1.5, makespan 2.5")
	fmt.Println()
	var reports []bench.RaceReport
	for _, policy := range []core.WaitPolicy{core.WaitNone, core.WaitSleepYield, core.WaitQuiescence} {
		rep, err := bench.RaceExperiment(bench.Spec{
			Scheduler: *sched, Workers: 2, Wait: policy,
			StallDeadline: *timeout,
		}, *trials)
		if err != nil {
			var stall *fault.StallError
			if errors.As(err, &stall) {
				log.Printf("policy %s: trial wedged; watchdog fired after %v", policy, stall.After)
				log.Fatal(err)
			}
			log.Fatal(err)
		}
		reports = append(reports, rep)
	}
	if err := bench.WriteRaceReport(os.Stdout, reports); err != nil {
		log.Fatal(err)
	}
}
