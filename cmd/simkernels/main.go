// Command simkernels regenerates the paper's Figs. 3-4: it runs a measured
// execution of a tile factorization, collects the per-invocation kernel
// timings, fits the normal, gamma and log-normal models, and prints the
// density series (histogram, KDE, and fitted curves) for the dominant
// kernel, plus the per-class fit table used to calibrate simulations.
//
// Usage:
//
//	simkernels -alg qr               # Fig. 3 (DTSMQR)
//	simkernels -alg cholesky         # Fig. 4 (DGEMM)
package main

import (
	"flag"
	"log"
	"os"

	"supersim/internal/bench"
	"supersim/internal/kernels"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simkernels: ")
	var (
		alg     = flag.String("alg", "qr", "algorithm: qr or cholesky")
		class   = flag.String("class", "", "kernel class to plot (default: DTSMQR for qr, DGEMM for cholesky)")
		nt      = flag.Int("nt", 8, "tiles per dimension")
		nb      = flag.Int("nb", 120, "tile size")
		workers = flag.Int("workers", 8, "virtual cores")
		sched   = flag.String("sched", "quark", "scheduler: quark, starpu or ompss")
		bins    = flag.Int("bins", 20, "histogram bins")
		seed    = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	target := kernels.Class(*class)
	if target == "" {
		if *alg == "qr" {
			target = kernels.ClassTSMQR
		} else {
			target = kernels.ClassGEMM
		}
	}
	spec := bench.Spec{
		Algorithm: *alg, Scheduler: *sched,
		NT: *nt, NB: *nb, Workers: *workers, Seed: *seed,
	}
	report, err := bench.KernelFitExperiment(spec, target, *bins)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteKernelFitReport(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
}
