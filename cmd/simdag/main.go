// Command simdag regenerates the paper's Figs. 1-2 — the dependence DAG
// of a tile factorization (Graphviz DOT) and the serial task stream with
// its read/write decorations — and works with captured `.dag` frames (the
// internal/replay binary codec): capture to disk, inspect, validate and
// convert.
//
// Usage:
//
//	simdag -alg qr -nt 4 -dot qr4.dot        # Fig. 1
//	simdag -alg qr -nt 3 -list               # Fig. 2
//	simdag -alg cholesky -nt 6 -capture c6.dag   # capture + encode a frame
//	simdag -in c6.dag                        # inspect a frame
//	simdag -in c6.dag -validate              # validate + replay fingerprint
//	simdag -in c6.dag -dot -                 # convert a frame to DOT
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"supersim/internal/bench"
	"supersim/internal/core"
	"supersim/internal/replay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simdag: ")
	var (
		alg      = flag.String("alg", "qr", "algorithm: qr, cholesky or lu")
		nt       = flag.Int("nt", 4, "tiles per dimension")
		sched    = flag.String("sched", "ompss", "scheduler for -capture (quark or ompss)")
		list     = flag.Bool("list", false, "print the serial task stream (Fig. 2 style)")
		dot      = flag.String("dot", "", "write Graphviz DOT to this file ('-' for stdout)")
		capture  = flag.String("capture", "", "capture -alg/-nt and write the encoded .dag frame to this file")
		in       = flag.String("in", "", "read a .dag frame instead of generating from -alg/-nt")
		validate = flag.Bool("validate", false, "with -in: replay the frame and print its fingerprint")
	)
	flag.Parse()

	switch {
	case *capture != "":
		captureFrame(*alg, *sched, *nt, *capture)
	case *in != "":
		inspectFrame(*in, *validate, *dot)
	default:
		figures(*alg, *nt, *list, *dot)
	}
}

// captureFrame runs the capture path on the requested factorization and
// publishes the arena's encoded frame.
func captureFrame(alg, sched string, nt int, path string) {
	dag, err := bench.CaptureSpec(bench.Spec{
		Algorithm: alg, Scheduler: sched, NT: nt, NB: 8, Workers: 8, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	arena, err := dag.Arena()
	if err != nil {
		log.Fatal(err)
	}
	frame := arena.Encode()
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d tasks, %d edges, %d bytes -> %s\n",
		alg, len(dag.Tasks), dag.NumEdges(), len(frame), path)
}

// inspectFrame loads (and so fully validates) a .dag frame and prints its
// shape; -validate adds a deterministic replay fingerprint, -dot converts
// the frame's graph to Graphviz.
func inspectFrame(path string, validate bool, dot string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	arena, err := replay.Load(raw)
	if err != nil {
		log.Fatalf("%s: invalid frame: %v", path, err)
	}
	dag := arena.DAG()
	fmt.Printf("%s: valid frame, %d bytes\n", path, len(raw))
	fmt.Printf("  label    %s\n", dag.Label)
	fmt.Printf("  tasks    %d\n", len(dag.Tasks))
	fmt.Printf("  edges    %d\n", dag.NumEdges())
	fmt.Printf("  handles  %d\n", dag.Handles)
	fmt.Printf("  workers  %d (capture width)\n", dag.Workers)
	classes := make(map[string]int)
	order := make([]string, 0, 8)
	for i := range dag.Tasks {
		c := dag.Tasks[i].Class
		if _, seen := classes[c]; !seen {
			order = append(order, c) // first-appearance order: deterministic
		}
		classes[c]++
	}
	for _, class := range order {
		fmt.Printf("  class    %-8s x%d\n", class, classes[class])
	}
	if validate {
		tr, err := replay.RunArena(arena, replay.Options{
			Workers: dag.Workers, Model: core.FixedModel(1e-3), Seed: 1,
		})
		if err != nil {
			log.Fatalf("%s: frame does not replay: %v", path, err)
		}
		fmt.Printf("  replay   %d events, makespan %.6g, fingerprint %016x\n",
			len(tr.Events), tr.Makespan(), tr.Fingerprint())
	}
	if dot != "" {
		writeDOT(dot, dag)
	}
}

// writeDOT renders a captured DAG as Graphviz (nodes labelled by task
// class, edges by dependence kind).
func writeDOT(path string, dag *replay.DAG) {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=rounded];\n", dag.Label)
	for i := range dag.Tasks {
		t := &dag.Tasks[i]
		label := t.Label
		if label == "" {
			label = t.Class
		}
		fmt.Fprintf(&b, "  t%d [label=%q];\n", t.ID, label)
	}
	for i := range dag.Tasks {
		t := &dag.Tasks[i]
		for _, d := range t.Deps {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", d.Pred, t.ID)
		}
	}
	b.WriteString("}\n")
	if path == "-" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DOT written to %s (render with: dot -Tpdf %s)\n", path, path)
}

// figures is the original Figs. 1-2 mode.
func figures(alg string, nt int, list bool, dot string) {
	report, err := bench.DAGExperiment(alg, nt)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteDAGReport(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
	if list {
		lines, err := bench.TaskListExperiment(alg, nt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nserial task stream (%d tasks):\n", len(lines))
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	switch dot {
	case "":
	case "-":
		fmt.Print(report.DOT)
	default:
		if err := os.WriteFile(dot, []byte(report.DOT), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nDOT written to %s (render with: dot -Tpdf %s)\n", dot, dot)
	}
}
