// Command simdag regenerates the paper's Figs. 1-2: the dependence DAG of
// a tile factorization (Graphviz DOT) and the serial task stream with its
// read/write decorations.
//
// Usage:
//
//	simdag -alg qr -nt 4 -dot qr4.dot     # Fig. 1
//	simdag -alg qr -nt 3 -list            # Fig. 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"supersim/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simdag: ")
	var (
		alg  = flag.String("alg", "qr", "algorithm: qr or cholesky")
		nt   = flag.Int("nt", 4, "tiles per dimension")
		list = flag.Bool("list", false, "print the serial task stream (Fig. 2 style)")
		dot  = flag.String("dot", "", "write Graphviz DOT to this file ('-' for stdout)")
	)
	flag.Parse()

	report, err := bench.DAGExperiment(*alg, *nt)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteDAGReport(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
	if *list {
		lines, err := bench.TaskListExperiment(*alg, *nt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nserial task stream (%d tasks):\n", len(lines))
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	switch *dot {
	case "":
	case "-":
		fmt.Print(report.DOT)
	default:
		if err := os.WriteFile(*dot, []byte(report.DOT), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nDOT written to %s (render with: dot -Tpdf %s)\n", *dot, *dot)
	}
}
