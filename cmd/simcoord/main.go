// Command simcoord is the cluster coordinator for a fleet of simd
// workers. Workers register and heartbeat; jobs submitted here are
// routed by consistent hashing on the capture-cache key, so a repeated
// workload lands on the worker that already holds its DAG frame.
// Sweeps with enough replicas are fanned across workers as replica
// slices whose merged statistics are bit-identical to a single-node
// run. When a worker stops heartbeating, its unfinished parts are
// re-dispatched onto the ring; fingerprints dedupe any late completion
// from the presumed-dead worker.
//
// Usage:
//
//	go run ./cmd/simcoord -addr 127.0.0.1:9090 -cluster-key secret
//
// Endpoints:
//
//	POST /cluster/register   worker joins the ring (X-Cluster-Key)
//	POST /cluster/heartbeat  worker liveness (X-Cluster-Key)
//	POST /jobs               submit a job spec, returns 202 + dispatch
//	GET  /jobs               list dispatches
//	GET  /jobs/{id}          poll one dispatch
//	GET  /metrics            fleet-aggregated counters and latencies
//	GET  /healthz            liveness and worker counts
//
// With -data-dir, accepted dispatches are journaled (fsync-on-accept)
// and re-dispatched exactly once after a coordinator restart.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"supersim/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
	key := flag.String("cluster-key", "", "shared cluster secret (required)")
	dataDir := flag.String("data-dir", "", "dispatch journal directory; empty = in-memory only")
	beat := flag.Duration("heartbeat", 2*time.Second, "heartbeat interval advertised to workers")
	timeout := flag.Duration("heartbeat-timeout", 0, "silence before a worker is declared dead (default 4x heartbeat)")
	poll := flag.Duration("poll", 250*time.Millisecond, "dispatch/poll pump interval")
	flag.Parse()

	c, err := cluster.New(cluster.Config{
		Key:               *key,
		DataDir:           *dataDir,
		HeartbeatInterval: *beat,
		HeartbeatTimeout:  *timeout,
		PollInterval:      *poll,
	})
	if err != nil {
		log.Fatalf("simcoord: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("simcoord: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			log.Fatalf("simcoord: writing addr file: %v", err)
		}
	}
	log.Printf("simcoord: serving on %s (heartbeat=%v durable=%v)", bound, *beat, *dataDir != "")

	hs := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("simcoord: %v: shutting down", sig)
	case err := <-errCh:
		log.Fatalf("simcoord: serve: %v", err)
	}
	if err := hs.Close(); err != nil {
		log.Printf("simcoord: http close: %v", err)
	}
	c.Shutdown()
	m := c.Metrics()
	log.Printf("simcoord: stopped: %d dispatched, %d failovers, %d deduped", m.Dispatched, m.Failovers, m.Deduped)
}
