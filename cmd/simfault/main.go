// Command simfault runs the fault-resilience study: a fixed tile
// factorization is simulated on each scheduler, clean and under a suite of
// deterministic fault scenarios (transient task failures, kernel panics,
// stragglers, dead cores, and all combined), and the virtual-makespan
// degradation is tabulated together with the engine's recovery counters.
//
// Every fault plan is decided from the -faultseed at insertion time, so a
// row is exactly reproducible; rerunning with the same flags prints the
// same table.
//
// Usage:
//
//	simfault -alg cholesky -nt 10 -nb 120 -workers 8
//	simfault -scenario mixed -panic 0.05 -transient 0.2 -retries 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"supersim/internal/bench"
	"supersim/internal/fault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simfault: ")
	var (
		alg       = flag.String("alg", "cholesky", "algorithm: cholesky or qr")
		nt        = flag.Int("nt", 10, "tiles per dimension")
		nb        = flag.Int("nb", 120, "tile size")
		workers   = flag.Int("workers", 8, "virtual cores")
		seed      = flag.Uint64("seed", 42, "workload seed")
		faultSeed = flag.Uint64("faultseed", 1, "fault-plan seed")
		timeout   = flag.Duration("timeout", 30*time.Second,
			"wall-clock watchdog per run (0 disables)")
		scenario = flag.String("scenario", "",
			"run a single custom scenario with the -panic/-transient/-straggler/\n"+
				"-stall/-deadcores rates instead of the default suite")
		pPanic     = flag.Float64("panic", 0, "custom scenario: per-task panic probability")
		pTransient = flag.Float64("transient", 0, "custom scenario: per-task transient-failure probability")
		pStraggler = flag.Float64("straggler", 0, "custom scenario: per-task straggler probability")
		pStall     = flag.Float64("stall", 0, "custom scenario: per-task wall-clock stall probability")
		deadCores  = flag.Int("deadcores", 0, "custom scenario: virtual cores killed before the run")
		retries    = flag.Int("retries", 2, "custom scenario: retry budget per task")
	)
	flag.Parse()

	scenarios := bench.DefaultFaultScenarios(*faultSeed)
	if *scenario != "" {
		scenarios = []bench.FaultScenario{{
			Name: *scenario,
			Fault: fault.Config{
				Seed: *faultSeed,
				Default: fault.Rates{
					Panic:     *pPanic,
					Transient: *pTransient,
					Straggler: *pStraggler,
					Stall:     *pStall,
				},
				DeadCores: *deadCores,
			},
			MaxRetries: *retries,
		}}
	}

	spec := bench.Spec{
		Algorithm:     *alg,
		NT:            *nt,
		NB:            *nb,
		Workers:       *workers,
		Seed:          *seed,
		StallDeadline: *timeout,
	}
	fmt.Printf("fault resilience: %s NT=%d NB=%d on %d cores (fault seed %d)\n\n",
		*alg, *nt, *nb, *workers, *faultSeed)
	points, err := bench.FaultStudy(spec, bench.FaultModel(*alg, *nb), scenarios)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteFaultStudy(os.Stdout, points); err != nil {
		log.Fatal(err)
	}
	// Degraded completions (skipped tasks after retry exhaustion) are the
	// study's subject matter; only a wedged run is an operational failure.
	for _, p := range points {
		var stall *fault.StallError
		if errors.As(p.Err, &stall) {
			log.Fatalf("%s/%s wedged: %v", p.Scheduler, p.Scenario, p.Err)
		}
	}
}
