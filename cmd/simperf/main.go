// Command simperf regenerates the paper's Figs. 8-10: for each scheduler
// (OmpSs = Fig. 8, StarPU = Fig. 9, QUARK = Fig. 10) it sweeps matrix
// sizes for the QR and Cholesky factorizations, runs each point for real
// (measured mode) and in simulation (calibrated duration models), and
// prints the real GFLOP/s, simulated GFLOP/s and percentage error series.
//
// The paper sweeps at tile size 200 on 48 cores; defaults here are scaled
// for pure-Go kernels. The claim to verify: errors of a few percent, worst
// at the smallest sizes.
//
// Usage:
//
//	simperf                          # all three schedulers, both algorithms
//	simperf -sched quark -alg qr     # one panel
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"supersim/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simperf: ")
	var (
		schedFlag = flag.String("sched", "", "scheduler (quark, starpu, ompss); empty = all")
		algFlag   = flag.String("alg", "", "algorithm (qr, cholesky); empty = both")
		nb        = flag.Int("nb", 200, "tile size (paper: 200)")
		maxNT     = flag.Int("maxnt", 8, "largest matrix size in tiles")
		workers   = flag.Int("workers", 8, "virtual cores (paper: 48)")
		par       = flag.Int("parallelism", 0, "replay executor: 0 serial greedy, >=1 PDES logical processes per replica")
		seed      = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	schedulers := bench.Schedulers
	if *schedFlag != "" {
		schedulers = []string{*schedFlag}
	}
	algorithms := []string{"qr", "cholesky"}
	if *algFlag != "" {
		algorithms = []string{*algFlag}
	}
	for _, sc := range schedulers {
		for _, alg := range algorithms {
			res, err := bench.PerfSweep(sc, alg, *nb, *maxNT, *workers, *par, *seed)
			if err != nil {
				log.Fatal(err)
			}
			if err := bench.WritePerfSweep(os.Stdout, res); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
}
