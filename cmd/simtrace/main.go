// Command simtrace regenerates the paper's Figs. 6-7: a measured execution
// trace of a tile factorization and the simulated trace of the identical
// configuration, rendered as SVG Gantt charts on a shared time axis, plus
// numeric fidelity metrics.
//
// The paper's run is QR, matrix 3960, tile 180, 48 cores; the default here
// is scaled for pure-Go kernels (N=1440, tile 180, 16 virtual cores) —
// pass -nt 22 -workers 48 to reproduce the paper's exact shape.
//
// Usage:
//
//	simtrace -alg qr -nt 8 -nb 180 -workers 16 -out traces/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"supersim/internal/bench"
	"supersim/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simtrace: ")
	var (
		alg     = flag.String("alg", "qr", "algorithm: qr or cholesky")
		sched   = flag.String("sched", "quark", "scheduler: quark, starpu or ompss")
		nt      = flag.Int("nt", 8, "tiles per dimension")
		nb      = flag.Int("nb", 180, "tile size (paper: 180)")
		workers = flag.Int("workers", 16, "virtual cores (paper: 48)")
		out     = flag.String("out", "", "directory for SVG and text traces (omit to skip files)")
		seed    = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	spec := bench.Spec{
		Algorithm: *alg, Scheduler: *sched,
		NT: *nt, NB: *nb, Workers: *workers, Seed: *seed,
	}
	fmt.Printf("tracing %s on %s: N=%d (%dx%d tiles of %d), %d virtual cores\n",
		*alg, *sched, spec.N(), *nt, *nt, *nb, *workers)
	report, err := bench.TraceExperiment(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteTraceReport(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		// Shared time axis, as in the paper's side-by-side figures.
		span := report.Real.Makespan
		if report.Sim.Makespan > span {
			span = report.Sim.Makespan
		}
		files := []struct {
			name string
			tr   *trace.Trace
		}{
			{"real", report.Real.Trace},
			{"simulated", report.Sim.Trace},
		}
		for _, f := range files {
			svgPath := filepath.Join(*out, f.name+".svg")
			sf, err := os.Create(svgPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := f.tr.WriteSVG(sf, trace.SVGOptions{TimeScale: span}); err != nil {
				log.Fatal(err)
			}
			if err := sf.Close(); err != nil {
				log.Fatal(err)
			}
			txtPath := filepath.Join(*out, f.name+".txt")
			tf, err := os.Create(txtPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := f.tr.WriteText(tf); err != nil {
				log.Fatal(err)
			}
			if err := tf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s and %s\n", svgPath, txtPath)
		}
	}
}
