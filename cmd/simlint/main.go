// Command simlint runs the project's invariant analyzers (vclock,
// lockorder, guarded, wakeup, detrand) over the given packages — a
// multichecker in the style of golang.org/x/tools/go/analysis, built on
// the dependency-free framework in internal/analysis.
//
// Usage:
//
//	go run ./cmd/simlint ./...       # whole repo (CI's static job)
//	go run ./cmd/simlint ./internal/core
//	go run ./cmd/simlint -analyzers  # list analyzers
//
// Exit status is 0 when every invariant holds, 1 when any diagnostic is
// reported, 2 on usage or load errors. Test files are not analyzed (wall
// clock and ad-hoc randomness are legitimate in tests).
package main

import (
	"flag"
	"fmt"
	"os"

	"supersim/internal/analysis"
)

func main() {
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
