// Command simlint runs the project's invariant analyzers (vclock,
// lockorder, guarded, wakeup, detrand, chanproto, durable, hotalloc,
// detmap) over the given packages — a multichecker in the style of
// golang.org/x/tools/go/analysis, built on the dependency-free framework
// in internal/analysis.
//
// Usage:
//
//	go run ./cmd/simlint ./...            # whole repo (CI's static job)
//	go run ./cmd/simlint ./internal/core
//	go run ./cmd/simlint -analyzers       # list analyzers
//	go run ./cmd/simlint -json ./...      # machine-readable diagnostics
//	go run ./cmd/simlint -allowlist ./... # audit every //simlint:allow
//
// Exit status is 0 when every invariant holds, 1 when any diagnostic is
// reported (or, with -allowlist, when any allow directive lacks a
// justification), 2 on usage or load errors. Test files are not analyzed
// (wall clock and ad-hoc randomness are legitimate in tests).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"supersim/internal/analysis"
)

// jsonDiagnostic is the -json wire shape for one diagnostic.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonAllow is the -allowlist -json wire shape for one directive.
type jsonAllow struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason,omitempty"`
}

func main() {
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON (diagnostics, or allows with -allowlist)")
	allowlist := flag.Bool("allowlist", false,
		"audit //simlint:allow directives instead of running analyzers; exit 1 if any lacks a reason")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-analyzers] [-json] [-allowlist] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	if *allowlist {
		os.Exit(auditAllows(pkgs, *asJSON))
	}

	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// auditAllows prints every //simlint:allow directive with its location
// and justification, and returns 1 if any directive is reasonless —
// policy (DESIGN.md §8): a suppression without a why is a review debt,
// and CI refuses it.
func auditAllows(pkgs []*analysis.Package, asJSON bool) int {
	allows := analysis.CollectAllows(pkgs)
	reasonless := 0
	if asJSON {
		out := make([]jsonAllow, 0, len(allows))
		for _, ad := range allows {
			out = append(out, jsonAllow{
				File:      ad.Pos.Filename,
				Line:      ad.Pos.Line,
				Analyzers: ad.Names,
				Reason:    ad.Reason,
			})
			if ad.Reason == "" {
				reasonless++
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, ad := range allows {
			reason := ad.Reason
			if reason == "" {
				reason = "(no reason given)"
				reasonless++
			}
			fmt.Printf("%s:%d: allow ", ad.Pos.Filename, ad.Pos.Line)
			for i, name := range ad.Names {
				if i > 0 {
					fmt.Print(",")
				}
				fmt.Print(name)
			}
			fmt.Printf(" — %s\n", reason)
		}
		fmt.Fprintf(os.Stderr, "simlint: %d allow directive(s), %d without a reason\n", len(allows), reasonless)
	}
	if reasonless > 0 {
		fmt.Fprintf(os.Stderr, "simlint: every //simlint:allow must state why the invariant is broken there\n")
		return 1
	}
	return 0
}
