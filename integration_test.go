package supersim_test

import (
	"bytes"
	"strings"
	"testing"

	"supersim"
	"supersim/internal/bench"
	"supersim/internal/core"
	"supersim/internal/factor"
	"supersim/internal/trace"
	"supersim/internal/workload"
)

// TestFullPipelineAllAlgorithmsAllSchedulers is the top-level integration
// test: for every algorithm x scheduler combination it performs the
// complete paper workflow — measured run (with numerical verification),
// model calibration, simulated run — and checks the simulation's fidelity
// and structural validity.
func TestFullPipelineAllAlgorithmsAllSchedulers(t *testing.T) {
	for _, alg := range []string{"cholesky", "qr", "lu"} {
		for _, schedName := range bench.Schedulers {
			t.Run(alg+"/"+schedName, func(t *testing.T) {
				spec := bench.Spec{
					Algorithm: alg, Scheduler: schedName,
					NT: 6, NB: 32, Workers: 4, Seed: 7,
				}
				rep, err := bench.TraceExperiment(spec)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Real.NumTasks != rep.Sim.NumTasks {
					t.Errorf("task counts differ: %d vs %d", rep.Real.NumTasks, rep.Sim.NumTasks)
				}
				if v := rep.Real.Trace.Validate(); len(v) != 0 {
					t.Errorf("real trace invalid: %d violations", len(v))
				}
				if v := rep.Sim.Trace.Validate(); len(v) != 0 {
					t.Errorf("sim trace invalid: %d violations", len(v))
				}
				// Tiny problems are noisy; this is a sanity bound, the
				// benchmarks report the real accuracy numbers.
				if rep.Comparison.MakespanErrorPct > 50 {
					t.Errorf("simulation error %.1f%% out of sanity range", rep.Comparison.MakespanErrorPct)
				}
				if rep.Sim.Makespan <= 0 || rep.Real.Makespan <= 0 {
					t.Error("degenerate makespans")
				}
			})
		}
	}
}

// TestNumericalVerificationThroughFacade factors with measured mode via
// the public API and verifies the result against reference math.
func TestNumericalVerificationThroughFacade(t *testing.T) {
	nt, nb := 4, 16
	a := workload.RandomSPD(nt, nb, 5)
	orig := a.Clone()
	rt, err := supersim.NewOmpSs(3)
	if err != nil {
		t.Fatal(err)
	}
	sim := supersim.NewSimulator(rt, "real")
	sink := factor.InsertMeasured(rt, sim, factor.Cholesky(a))
	rt.Shutdown()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if r := factor.CholeskyResidual(orig, a); r > 1e-10 {
		t.Errorf("residual %g", r)
	}
	if sim.Trace().Makespan() <= 0 {
		t.Error("no virtual time accumulated")
	}
}

// TestTraceArtifactsRoundTrip renders every export format from one run.
func TestTraceArtifactsRoundTrip(t *testing.T) {
	spec := bench.Spec{Algorithm: "qr", Scheduler: "quark", NT: 4, NB: 16, Workers: 3, Seed: 9}
	res, _, err := bench.Measured(spec)
	if err != nil {
		t.Fatal(err)
	}
	var svg, txt, js bytes.Buffer
	if err := res.Trace.WriteSVG(&svg, trace.SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "</svg>") {
		t.Error("incomplete SVG")
	}
	if err := res.Trace.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(txt.String(), "\n"); got != res.NumTasks+2 {
		t.Errorf("text export has %d lines, want %d", got, res.NumTasks+2)
	}
	if err := res.Trace.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSON(&js)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != res.NumTasks {
		t.Errorf("JSON round trip lost events")
	}
}

// TestModelPersistenceAcrossRuns calibrates, serializes the model,
// restores it, and simulates with the restored copy — the cross-process
// calibration workflow.
func TestModelPersistenceAcrossRuns(t *testing.T) {
	spec := bench.Spec{Algorithm: "cholesky", Scheduler: "quark", NT: 5, NB: 24, Workers: 3, Seed: 3}
	_, collector, err := bench.Measured(spec)
	if err != nil {
		t.Fatal(err)
	}
	model, err := supersim.FitModel(collector)
	if err != nil {
		t.Fatal(err)
	}
	data, err := model.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored := &supersim.Model{}
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	// The restored model must be parameter-identical to the original.
	if len(restored.Dists) != len(model.Dists) {
		t.Fatalf("restored %d classes, want %d", len(restored.Dists), len(model.Dists))
	}
	for class, d := range model.Dists {
		r := restored.Dists[class]
		if r == nil || r.Name() != d.Name() || r.Mean() != d.Mean() || r.Var() != d.Var() {
			t.Errorf("class %s: restored %v != original %v", class, r, d)
		}
	}
	// A simulation driven by the restored model must land in the same
	// regime as one driven by the original. Exact equality cannot be
	// required: the scheduler's worker assignment is nondeterministic and
	// durations are drawn from per-worker streams.
	simRes, err := bench.Simulated(spec, restored)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := bench.Simulated(spec, model)
	if err != nil {
		t.Fatal(err)
	}
	if bench.ErrPct(simRes.Makespan, direct.Makespan) > 25 {
		t.Errorf("restored-model makespan %g far from original %g", simRes.Makespan, direct.Makespan)
	}
}

// TestWaitPolicyEnumStrings pins the policy names used in reports.
func TestWaitPolicyEnumStrings(t *testing.T) {
	if core.WaitQuiescence.String() != "quiescence" ||
		core.WaitSleepYield.String() != "sleep-yield" ||
		core.WaitNone.String() != "none" ||
		core.WaitPolicy(99).String() != "unknown" {
		t.Error("wait policy names changed; reports depend on them")
	}
}
