// Cholesky end-to-end: the paper's first case study (Algorithm 1).
//
// The program factors a symmetric positive definite matrix with the tile
// Cholesky algorithm scheduled by OmpSs-style task insertion, verifies the
// numerics, calibrates kernel duration models from the measured run, then
// simulates the identical execution and compares the traces. It writes
// real.svg and simulated.svg next to the binary when -svg is given.
//
//	go run ./examples/cholesky -nt 8 -nb 96 -workers 8 -svg out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"supersim"
	"supersim/internal/factor"
	"supersim/internal/sched/ompss"
	"supersim/internal/trace"
	"supersim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cholesky: ")
	var (
		nt      = flag.Int("nt", 8, "tiles per dimension")
		nb      = flag.Int("nb", 96, "tile size")
		workers = flag.Int("workers", 8, "virtual cores")
		svgDir  = flag.String("svg", "", "directory for trace SVGs (optional)")
	)
	flag.Parse()

	// --- measured (real) run ---------------------------------------------
	a := workload.RandomSPD(*nt, *nb, 42)
	orig := a.Clone()
	ops := factor.Cholesky(a)
	fmt.Printf("tile Cholesky of a %dx%d SPD matrix (%dx%d tiles of %d): %d tasks\n",
		a.N(), a.N(), *nt, *nt, *nb, len(ops))

	rt, err := ompss.New(*workers)
	if err != nil {
		log.Fatal(err)
	}
	collector := supersim.NewCollector()
	sim := supersim.NewSimulator(rt, "real", supersim.WithSampleHook(collector.Hook()))
	sink := factor.InsertMeasured(rt, sim, ops)
	rt.TaskWait()
	rt.Shutdown()
	if err := sink.Err(); err != nil {
		log.Fatalf("factorization failed: %v", err)
	}
	realTrace := sim.Trace()

	residual := factor.CholeskyResidual(orig, a)
	fmt.Printf("numerical check: ||A - L*L^T||_F / ||A||_F = %.3g\n", residual)
	if residual > 1e-10 {
		log.Fatal("residual too large; factorization is wrong")
	}
	fmt.Printf("measured run:  virtual makespan %.4fs, efficiency %.3f\n",
		realTrace.Makespan(), realTrace.Efficiency())

	// --- calibrate and simulate ------------------------------------------
	model, err := supersim.FitModel(collector)
	if err != nil {
		log.Fatal(err)
	}
	rt2, err := ompss.New(*workers)
	if err != nil {
		log.Fatal(err)
	}
	sim2 := supersim.NewSimulator(rt2, "simulated")
	tk := supersim.NewTasker(sim2, model, 7)
	// In the simulated run the same serial task stream is inserted, but
	// each kernel is replaced by a call into the simulation library —
	// the paper's central usage pattern.
	b := workload.RandomSPD(*nt, *nb, 42)
	for _, op := range factor.Cholesky(b) {
		rt2.Insert(&supersim.Task{
			Class: string(op.Class), Label: op.Label(),
			Args: op.SchedArgs(), Priority: op.Priority,
			Func: tk.SimTask(string(op.Class)),
		})
	}
	rt2.TaskWait()
	rt2.Shutdown()
	simTrace := sim2.Trace()

	cmp := trace.Compare(realTrace, simTrace)
	fmt.Printf("simulated run: virtual makespan %.4fs, efficiency %.3f\n",
		simTrace.Makespan(), simTrace.Efficiency())
	fmt.Printf("simulation error: %.2f%% of the measured makespan\n", cmp.MakespanErrorPct)

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			log.Fatal(err)
		}
		span := realTrace.Makespan()
		if m := simTrace.Makespan(); m > span {
			span = m
		}
		for _, pair := range []struct {
			name string
			tr   *supersim.Trace
		}{{"real", realTrace}, {"simulated", simTrace}} {
			path := filepath.Join(*svgDir, pair.name+".svg")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := pair.tr.WriteSVG(f, trace.SVGOptions{TimeScale: span}); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
	}
}
