// Autotune: the paper's motivating use case (Section VI-B).
//
// "If it is possible to predict performance of an algorithm running on a
// particular scheduler configuration in a reduced time period, it will be
// possible to try a larger number of possible scheduling and algorithmic
// parameters" — this example does exactly that: it calibrates kernel
// models once from a single measured run, then sweeps tile sizes and
// StarPU scheduling policies purely in simulation (orders of magnitude
// faster than real runs), picks the best configuration, and validates the
// winner with one real run.
//
//	go run ./examples/autotune -n 960 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"supersim"
	"supersim/internal/bench"
	"supersim/internal/factor"
	"supersim/internal/kernels"
	"supersim/internal/sched/starpu"
	"supersim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("autotune: ")
	var (
		n       = flag.Int("n", 960, "matrix order (must be divisible by all candidate tile sizes)")
		workers = flag.Int("workers", 8, "virtual cores")
	)
	flag.Parse()

	tileSizes := []int{48, 60, 80, 96, 120, 160}
	policies := []string{starpu.PolicyEager, starpu.PolicyPrio, starpu.PolicyWS}

	// --- one measured calibration run per tile size ----------------------
	// Kernel speed depends on the tile size, so each nb needs its own
	// model; a single small problem per nb suffices (Section V-B1).
	fmt.Printf("calibrating kernel models for %d tile sizes...\n", len(tileSizes))
	models := map[int]*supersim.Model{}
	calibWall := time.Duration(0)
	for _, nb := range tileSizes {
		if *n%nb != 0 {
			log.Fatalf("n=%d not divisible by tile size %d", *n, nb)
		}
		calibNT := 6 // small problem: enough samples of every kernel class
		spec := bench.Spec{
			Algorithm: "cholesky", Scheduler: "starpu",
			NT: calibNT, NB: nb, Workers: *workers, Seed: 42,
		}
		t0 := time.Now()
		model, _, err := bench.Calibrate(spec)
		if err != nil {
			log.Fatal(err)
		}
		calibWall += time.Since(t0)
		models[nb] = model
	}
	fmt.Printf("calibration took %.2fs of wall time total\n\n", calibWall.Seconds())

	// --- sweep the configuration space in simulation ---------------------
	type config struct {
		nb     int
		policy string
	}
	type outcome struct {
		config
		gflops float64
	}
	var results []outcome
	sweepWall := time.Duration(0)
	for _, nb := range tileSizes {
		for _, policy := range policies {
			nt := *n / nb
			a := workload.RandomSPD(nt, nb, 11)
			s, err := starpu.New(starpu.Conf{NCPUs: *workers, Policy: policy})
			if err != nil {
				log.Fatal(err)
			}
			sim := supersim.NewSimulator(s, "autotune")
			tk := supersim.NewTasker(sim, models[nb], uint64(nb))
			t0 := time.Now()
			for _, op := range factor.Cholesky(a) {
				if err := s.TaskSubmit(&starpu.Codelet{
					Name: string(op.Class),
					CPU:  tk.SimTask(string(op.Class)),
				}, op.SchedArgs(), starpu.WithPriority(op.Priority)); err != nil {
					log.Fatal(err)
				}
			}
			s.Barrier()
			s.Shutdown()
			sweepWall += time.Since(t0)
			gf := kernels.AlgorithmFlops("cholesky", *n) / sim.Trace().Makespan() / 1e9
			results = append(results, outcome{config{nb, policy}, gf})
		}
	}
	fmt.Printf("%-6s %-8s %10s\n", "nb", "policy", "GFLOP/s")
	best := results[0]
	for _, r := range results {
		marker := ""
		if r.gflops > best.gflops {
			best = r
		}
		fmt.Printf("%-6d %-8s %10.3f%s\n", r.nb, r.policy, r.gflops, marker)
	}
	fmt.Printf("\nsimulated %d configurations in %.3fs of wall time\n",
		len(results), sweepWall.Seconds())
	fmt.Printf("best configuration: nb=%d policy=%s (%.3f simulated GFLOP/s)\n\n",
		best.nb, best.policy, best.gflops)

	// --- validate the winner with one real run ---------------------------
	nt := *n / best.nb
	a := workload.RandomSPD(nt, best.nb, 11)
	orig := a.Clone()
	s, err := starpu.New(starpu.Conf{NCPUs: *workers, Policy: best.policy})
	if err != nil {
		log.Fatal(err)
	}
	sim := supersim.NewSimulator(s, "validate")
	sink := factor.InsertMeasured(s, sim, factor.Cholesky(a))
	s.Barrier()
	s.Shutdown()
	if err := sink.Err(); err != nil {
		log.Fatal(err)
	}
	if resid := factor.CholeskyResidual(orig, a); resid > 1e-10 {
		log.Fatalf("validation run numerically wrong: residual %g", resid)
	}
	realGF := kernels.AlgorithmFlops("cholesky", *n) / sim.Trace().Makespan() / 1e9
	fmt.Printf("validation (real run): %.3f GFLOP/s — prediction error %.2f%%\n",
		realGF, errPct(best.gflops, realGF))
}

func errPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b * 100
	if d < 0 {
		d = -d
	}
	return d
}
