// Autotune: the paper's motivating use case (Section VI-B).
//
// "If it is possible to predict performance of an algorithm running on a
// particular scheduler configuration in a reduced time period, it will be
// possible to try a larger number of possible scheduling and algorithmic
// parameters" — this example does exactly that, in three tiers of
// decreasing speed and increasing fidelity:
//
//  1. screen tile sizes on the replay engine: each nb's task DAG is
//     captured once and re-simulated many times with no scheduler at all;
//  2. sweep the shortlisted tile sizes against StarPU scheduling policies
//     in full simulation (replay pins one ready-queue ordering, so
//     comparing policies needs the real scheduler);
//  3. validate the winner with one real run.
//
//	go run ./examples/autotune -n 960 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"supersim"
	"supersim/internal/bench"
	"supersim/internal/factor"
	"supersim/internal/kernels"
	"supersim/internal/sched/starpu"
	"supersim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("autotune: ")
	var (
		n       = flag.Int("n", 960, "matrix order (must be divisible by all candidate tile sizes)")
		workers = flag.Int("workers", 8, "virtual cores")
	)
	flag.Parse()

	tileSizes := []int{48, 60, 80, 96, 120, 160}
	policies := []string{starpu.PolicyEager, starpu.PolicyPrio, starpu.PolicyWS}

	// --- one measured calibration run per tile size ----------------------
	// Kernel speed depends on the tile size, so each nb needs its own
	// model; a single small problem per nb suffices (Section V-B1).
	fmt.Printf("calibrating kernel models for %d tile sizes...\n", len(tileSizes))
	models := map[int]*supersim.Model{}
	calibWall := time.Duration(0)
	for _, nb := range tileSizes {
		if *n%nb != 0 {
			log.Fatalf("n=%d not divisible by tile size %d", *n, nb)
		}
		calibNT := 6 // small problem: enough samples of every kernel class
		spec := bench.Spec{
			Algorithm: "cholesky", Scheduler: "starpu",
			NT: calibNT, NB: nb, Workers: *workers, Seed: 42,
		}
		t0 := time.Now()
		model, _, err := bench.Calibrate(spec)
		if err != nil {
			log.Fatal(err)
		}
		calibWall += time.Since(t0)
		models[nb] = model
	}
	fmt.Printf("calibration took %.2fs of wall time total\n\n", calibWall.Seconds())

	// --- screen tile sizes on the replay engine --------------------------
	// One capture per nb (a 1-worker scheduler run with no-op bodies),
	// then many model-sampled replays with no scheduler: the cheapest way
	// to rank the algorithmic parameter. Policies are not compared here —
	// a replay follows one fixed list-scheduling order.
	const screenReps = 8
	type screened struct {
		nb     int
		gflops float64
	}
	var screen []screened
	screenWall := time.Duration(0)
	for _, nb := range tileSizes {
		nt := *n / nb
		a := workload.RandomSPD(nt, nb, 11)
		s, err := starpu.New(starpu.Conf{NCPUs: 1})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := supersim.CaptureDAG(s, fmt.Sprintf("cholesky-nb%d", nb))
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		for _, op := range factor.Cholesky(a) {
			if err := s.TaskSubmit(&starpu.Codelet{
				Name: string(op.Class),
				CPU:  func(*supersim.Ctx) {},
			}, op.SchedArgs(), starpu.WithPriority(op.Priority)); err != nil {
				log.Fatal(err)
			}
		}
		s.Barrier()
		s.Shutdown()
		dag, err := rec.DAG()
		if err != nil {
			log.Fatal(err)
		}
		best := math.Inf(1)
		for rep := 0; rep < screenReps; rep++ {
			tr, err := supersim.ReplayDAG(dag, supersim.ReplayOptions{
				Workers: *workers, Model: models[nb], Seed: uint64(nb*1000 + rep + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			if ms := tr.Makespan(); ms < best {
				best = ms
			}
		}
		screenWall += time.Since(t0)
		screen = append(screen, screened{nb, kernels.AlgorithmFlops("cholesky", *n) / best / 1e9})
	}
	sort.Slice(screen, func(i, j int) bool { return screen[i].gflops > screen[j].gflops })
	shortlistLen := 3
	if shortlistLen > len(screen) {
		shortlistLen = len(screen)
	}
	fmt.Printf("%-6s %10s   (replay screening, %d replicas each)\n", "nb", "GFLOP/s", screenReps)
	var shortlist []int
	for i, r := range screen {
		marker := ""
		if i < shortlistLen {
			marker = "  <- shortlist"
			shortlist = append(shortlist, r.nb)
		}
		fmt.Printf("%-6d %10.3f%s\n", r.nb, r.gflops, marker)
	}
	fmt.Printf("screened %d tile sizes in %.3fs of wall time\n\n", len(screen), screenWall.Seconds())

	// --- sweep the shortlist against policies in full simulation ---------
	type config struct {
		nb     int
		policy string
	}
	type outcome struct {
		config
		gflops float64
	}
	var results []outcome
	sweepWall := time.Duration(0)
	for _, nb := range shortlist {
		for _, policy := range policies {
			nt := *n / nb
			a := workload.RandomSPD(nt, nb, 11)
			s, err := starpu.New(starpu.Conf{NCPUs: *workers, Policy: policy})
			if err != nil {
				log.Fatal(err)
			}
			sim := supersim.NewSimulator(s, "autotune")
			tk := supersim.NewTasker(sim, models[nb], uint64(nb))
			t0 := time.Now()
			for _, op := range factor.Cholesky(a) {
				if err := s.TaskSubmit(&starpu.Codelet{
					Name: string(op.Class),
					CPU:  tk.SimTask(string(op.Class)),
				}, op.SchedArgs(), starpu.WithPriority(op.Priority)); err != nil {
					log.Fatal(err)
				}
			}
			s.Barrier()
			s.Shutdown()
			sweepWall += time.Since(t0)
			gf := kernels.AlgorithmFlops("cholesky", *n) / sim.Trace().Makespan() / 1e9
			results = append(results, outcome{config{nb, policy}, gf})
		}
	}
	fmt.Printf("%-6s %-8s %10s\n", "nb", "policy", "GFLOP/s")
	best := results[0]
	for _, r := range results {
		marker := ""
		if r.gflops > best.gflops {
			best = r
		}
		fmt.Printf("%-6d %-8s %10.3f%s\n", r.nb, r.policy, r.gflops, marker)
	}
	fmt.Printf("\nsimulated %d configurations in %.3fs of wall time\n",
		len(results), sweepWall.Seconds())
	fmt.Printf("best configuration: nb=%d policy=%s (%.3f simulated GFLOP/s)\n\n",
		best.nb, best.policy, best.gflops)

	// --- validate the winner with one real run ---------------------------
	nt := *n / best.nb
	a := workload.RandomSPD(nt, best.nb, 11)
	orig := a.Clone()
	s, err := starpu.New(starpu.Conf{NCPUs: *workers, Policy: best.policy})
	if err != nil {
		log.Fatal(err)
	}
	sim := supersim.NewSimulator(s, "validate")
	sink := factor.InsertMeasured(s, sim, factor.Cholesky(a))
	s.Barrier()
	s.Shutdown()
	if err := sink.Err(); err != nil {
		log.Fatal(err)
	}
	if resid := factor.CholeskyResidual(orig, a); resid > 1e-10 {
		log.Fatalf("validation run numerically wrong: residual %g", resid)
	}
	realGF := kernels.AlgorithmFlops("cholesky", *n) / sim.Trace().Makespan() / 1e9
	fmt.Printf("validation (real run): %.3f GFLOP/s — prediction error %.2f%%\n",
		realGF, errPct(best.gflops, realGF))
}

func errPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b * 100
	if d < 0 {
		d = -d
	}
	return d
}
