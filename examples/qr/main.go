// QR end-to-end: the paper's second case study (Algorithm 2), run on all
// three scheduler reproductions through their native APIs.
//
// The same tile QR task stream is expressed three times — with QUARK's
// InsertTask flags, StarPU's codelets, and OmpSs' depend clauses — then
// factored for real (with numerical verification) and simulated, printing
// the per-scheduler virtual makespans. This demonstrates the paper's
// portability claim: the simulation library needs nothing from the
// scheduler beyond task insertion and (optionally) a quiescence query.
//
//	go run ./examples/qr -nt 6 -nb 96 -workers 6
package main

import (
	"flag"
	"fmt"
	"log"

	"supersim"
	"supersim/internal/factor"
	"supersim/internal/sched"
	"supersim/internal/sched/ompss"
	"supersim/internal/sched/quark"
	"supersim/internal/sched/starpu"
	"supersim/internal/tile"
	"supersim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qr: ")
	var (
		nt      = flag.Int("nt", 6, "tiles per dimension")
		nb      = flag.Int("nb", 96, "tile size")
		workers = flag.Int("workers", 6, "virtual cores")
	)
	flag.Parse()

	fmt.Printf("tile QR of a %dx%d matrix (%dx%d tiles of %d)\n",
		*nt**nb, *nt**nb, *nt, *nt, *nb)

	// ---------------- QUARK: InsertTask with flags -----------------------
	var model *supersim.Model
	{
		a := workload.RandomGeneral(*nt, *nb, 42)
		tm := tile.NewMatrix(*nt, *nb)
		orig := a.Clone()
		q, err := quark.New(*workers)
		if err != nil {
			log.Fatal(err)
		}
		collector := supersim.NewCollector()
		sim := supersim.NewSimulator(q, "quark-real", supersim.WithSampleHook(collector.Hook()))
		sink := factor.InsertMeasured(q, sim, factor.QR(a, tm))
		q.Barrier()
		q.Shutdown()
		if err := sink.Err(); err != nil {
			log.Fatal(err)
		}
		resid := factor.QRResidual(orig, a, tm)
		orth := factor.QROrthogonality(a, tm)
		fmt.Printf("QUARK : measured makespan %.4fs  residual %.2g  orthogonality %.2g\n",
			sim.Trace().Makespan(), resid, orth)

		model, err = supersim.FitModel(collector)
		if err != nil {
			log.Fatal(err)
		}
		q2, err := quark.New(*workers)
		if err != nil {
			log.Fatal(err)
		}
		sim2 := supersim.NewSimulator(q2, "quark-sim")
		tk := supersim.NewTasker(sim2, model, 3)
		b := workload.RandomGeneral(*nt, *nb, 42)
		tb := tile.NewMatrix(*nt, *nb)
		for _, op := range factor.QR(b, tb) {
			// The QUARK-native insertion path, with priority flags as a
			// PLASMA code would use them.
			q2.InsertTask(string(op.Class), tk.SimTask(string(op.Class)),
				&quark.TaskFlags{Priority: op.Priority, Label: op.Label()},
				op.SchedArgs()...)
		}
		q2.Barrier()
		q2.Shutdown()
		fmt.Printf("QUARK : simulated makespan %.4fs (error %.2f%%)\n",
			sim2.Trace().Makespan(),
			errPct(sim2.Trace().Makespan(), sim.Trace().Makespan()))
	}

	// ---------------- StarPU: codelets -----------------------------------
	{
		a := workload.RandomGeneral(*nt, *nb, 42)
		tm := tile.NewMatrix(*nt, *nb)
		s, err := starpu.New(starpu.Conf{NCPUs: *workers, Policy: starpu.PolicyWS})
		if err != nil {
			log.Fatal(err)
		}
		sim := supersim.NewSimulator(s, "starpu-sim")
		// The same calibrated model drives every scheduler: the library
		// is agnostic to which runtime resolves the dependences.
		tk := supersim.NewTasker(sim, model, 5)
		// One codelet per kernel class; StarPU users register these once.
		codelets := map[string]*starpu.Codelet{}
		for _, class := range []string{"DGEQRT", "DORMQR", "DTSQRT", "DTSMQR"} {
			class := class
			codelets[class] = &starpu.Codelet{Name: class, CPU: tk.SimTask(class)}
		}
		for _, op := range factor.QR(a, tm) {
			if err := s.TaskSubmit(codelets[string(op.Class)], op.SchedArgs(),
				starpu.WithLabel(op.Label()), starpu.WithPriority(op.Priority)); err != nil {
				log.Fatal(err)
			}
		}
		s.Barrier()
		s.Shutdown()
		fmt.Printf("StarPU: simulated makespan %.4fs with the '%s' policy (%d steals)\n",
			sim.Trace().Makespan(), s.Policy(), s.Stats().Steals)
	}

	// ---------------- OmpSs: depend clauses ------------------------------
	{
		a := workload.RandomGeneral(*nt, *nb, 42)
		tm := tile.NewMatrix(*nt, *nb)
		o, err := ompss.New(*workers)
		if err != nil {
			log.Fatal(err)
		}
		sim := supersim.NewSimulator(o, "ompss-sim")
		tk := supersim.NewTasker(sim, model, 5)
		for _, op := range factor.QR(a, tm) {
			// Translate access modes into OmpSs depend clauses, as the
			// Mercurium compiler would for #pragma omp task annotations.
			deps := make([]sched.Arg, 0, len(op.Args))
			for _, arg := range op.SchedArgs() {
				switch arg.Mode {
				case sched.Read:
					deps = append(deps, ompss.In(arg.Handle))
				case sched.Write:
					deps = append(deps, ompss.Out(arg.Handle))
				default:
					deps = append(deps, ompss.InOut(arg.Handle))
				}
			}
			o.Task(string(op.Class), tk.SimTask(string(op.Class)), deps...)
		}
		o.TaskWait()
		o.Shutdown()
		fmt.Printf("OmpSs : simulated makespan %.4fs\n", sim.Trace().Makespan())
	}
}

func errPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b * 100
	if d < 0 {
		d = -d
	}
	return d
}
