// Quickstart: the smallest end-to-end use of the simulation library.
//
// It builds a tiny diamond-shaped task graph (producer, two parallel
// consumers, a join), runs it twice on a QUARK-style scheduler with two
// virtual cores — once with constant durations, once with a log-normal
// model — and prints the virtual traces. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"supersim"
	"supersim/internal/dist"
	"supersim/internal/perfmodel"
)

func main() {
	// --- 1. Constant-duration simulation --------------------------------
	rt, err := supersim.NewQUARK(2) // two virtual cores
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sim := supersim.NewSimulator(rt, "quickstart")
	tk := supersim.NewTasker(sim, supersim.ClassMap{
		"LOAD": 1.0, "WORK": 2.0, "JOIN": 0.5,
	}, 42)

	// Data handles: any comparable value identifies a datum; the
	// scheduler derives RaW/WaR/WaW hazards from the access annotations.
	src := new(int)
	left, right := new(int), new(int)

	rt.Insert(&supersim.Task{Class: "LOAD", Label: "load",
		Func: tk.SimTask("LOAD"),
		Args: []supersim.Arg{supersim.W(src)}})
	rt.Insert(&supersim.Task{Class: "WORK", Label: "work-left",
		Func: tk.SimTask("WORK"),
		Args: []supersim.Arg{supersim.R(src), supersim.W(left)}})
	rt.Insert(&supersim.Task{Class: "WORK", Label: "work-right",
		Func: tk.SimTask("WORK"),
		Args: []supersim.Arg{supersim.R(src), supersim.W(right)}})
	rt.Insert(&supersim.Task{Class: "JOIN", Label: "join",
		Func: tk.SimTask("JOIN"),
		Args: []supersim.Arg{supersim.R(left), supersim.R(right)}})
	rt.Shutdown()

	tr := sim.Trace()
	fmt.Println("diamond DAG on 2 virtual cores, constant durations:")
	for _, e := range tr.Events {
		fmt.Printf("  core %d  %-11s [%5.2f, %5.2f]\n", e.Worker, e.Label, e.Start, e.End)
	}
	fmt.Printf("virtual makespan: %.2fs (load 1.0 + work 2.0 in parallel + join 0.5)\n\n",
		tr.Makespan())

	// --- 2. Stochastic durations ----------------------------------------
	// Real kernels vary run to run; the paper models them with fitted
	// distributions. Here we install a log-normal WORK model by hand.
	model := perfmodel.NewModel()
	model.Dists["LOAD"] = dist.Constant{Value: 1.0}
	model.Dists["WORK"] = dist.LogNormal{Mu: 0.65, Sigma: 0.2} // mean ~1.95
	model.Dists["JOIN"] = dist.Constant{Value: 0.5}

	rt2, err := supersim.NewQUARK(2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sim2 := supersim.NewSimulator(rt2, "quickstart-stochastic")
	tk2 := supersim.NewTasker(sim2, model, 7)
	src2, l2, r2 := new(int), new(int), new(int)
	rt2.Insert(&supersim.Task{Class: "LOAD", Label: "load", Func: tk2.SimTask("LOAD"),
		Args: []supersim.Arg{supersim.W(src2)}})
	rt2.Insert(&supersim.Task{Class: "WORK", Label: "work-left", Func: tk2.SimTask("WORK"),
		Args: []supersim.Arg{supersim.R(src2), supersim.W(l2)}})
	rt2.Insert(&supersim.Task{Class: "WORK", Label: "work-right", Func: tk2.SimTask("WORK"),
		Args: []supersim.Arg{supersim.R(src2), supersim.W(r2)}})
	rt2.Insert(&supersim.Task{Class: "JOIN", Label: "join", Func: tk2.SimTask("JOIN"),
		Args: []supersim.Arg{supersim.R(l2), supersim.R(r2)}})
	rt2.Shutdown()

	tr2 := sim2.Trace()
	fmt.Println("same DAG with a log-normal WORK model:")
	for _, e := range tr2.Events {
		fmt.Printf("  core %d  %-11s [%5.2f, %5.2f]\n", e.Worker, e.Label, e.Start, e.End)
	}
	fmt.Printf("virtual makespan: %.3fs\n", tr2.Makespan())

	if len(tr.Validate())+len(tr2.Validate()) != 0 {
		fmt.Fprintln(os.Stderr, "trace validation failed")
		os.Exit(1)
	}
}
