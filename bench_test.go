// Benchmarks regenerating every figure of the paper's evaluation plus the
// ablation and extension experiments (see DESIGN.md section 4 for the
// index). Each benchmark runs the full experiment and reports its headline
// numbers as custom metrics; run with -v to see the full series the paper
// plots:
//
//	go test -bench=. -benchmem -v
//
// Sizes are scaled for the pure-Go kernel substrate (see DESIGN.md
// section 2); pass -benchtime 1x for a single iteration of each.
package supersim_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"supersim/internal/bench"
	"supersim/internal/core"
	"supersim/internal/dist"
	"supersim/internal/fault"
	"supersim/internal/kernels"
	"supersim/internal/perfmodel"
	"supersim/internal/workload"
)

// benchSpec is the shared configuration for the trace/perf benchmarks:
// tile size 96 keeps a measured run under a second on the pure-Go kernels
// while preserving thousands of flops per task.
func benchSpec(alg, scheduler string, nt int) bench.Spec {
	return bench.Spec{
		Algorithm: alg,
		Scheduler: scheduler,
		NT:        nt,
		NB:        96,
		Workers:   8,
		Seed:      42,
	}
}

// BenchmarkFig01_QRDag regenerates Fig. 1: the dependence DAG of a 4x4-tile
// QR factorization.
func BenchmarkFig01_QRDag(b *testing.B) {
	var rep bench.DAGReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.DAGExperiment("qr", 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Nodes), "vertices")
	b.ReportMetric(float64(rep.Edges), "edges")
	b.ReportMetric(float64(rep.Depth), "depth")
	b.Logf("Fig. 1 DAG: %d vertices, %d edges, depth %d, widths %v",
		rep.Nodes, rep.Edges, rep.Depth, rep.WidthProfile)
}

// BenchmarkFig02_TaskStream regenerates Fig. 2: the serial task stream of a
// 3x3-tile QR factorization with its access decorations.
func BenchmarkFig02_TaskStream(b *testing.B) {
	var lines []string
	for i := 0; i < b.N; i++ {
		var err error
		lines, err = bench.TaskListExperiment("qr", 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(lines)), "tasks")
	b.Logf("Fig. 2 task stream (F0..F%d):\n%s", len(lines)-1, strings.Join(lines, "\n"))
}

// fitBenchmark shares the Figs. 3-4 body.
func fitBenchmark(b *testing.B, alg string, class kernels.Class) {
	b.Helper()
	var rep bench.KernelFitReport
	spec := benchSpec(alg, "quark", 7)
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.KernelFitExperiment(spec, class, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Samples), "samples")
	b.ReportMetric(rep.Fits[0].KS, "KS_best")
	var sb strings.Builder
	if err := bench.WriteKernelFitReport(&sb, rep); err != nil {
		b.Fatal(err)
	}
	b.Logf("Fig. %s density and fits:\n%s", map[string]string{"qr": "3", "cholesky": "4"}[alg], sb.String())
}

// BenchmarkFig03_FitDTSMQR regenerates Fig. 3: DTSMQR kernel timings from a
// QR run with normal/gamma/log-normal fits.
func BenchmarkFig03_FitDTSMQR(b *testing.B) { fitBenchmark(b, "qr", kernels.ClassTSMQR) }

// BenchmarkFig04_FitDGEMM regenerates Fig. 4: DGEMM kernel timings from a
// Cholesky run with normal/gamma/log-normal fits.
func BenchmarkFig04_FitDGEMM(b *testing.B) { fitBenchmark(b, "cholesky", kernels.ClassGEMM) }

// BenchmarkFig05_RaceCondition regenerates Fig. 5: the scheduling race,
// demonstrated by trace corruption without mitigation and eliminated by
// the sleep/yield and quiescence fixes.
func BenchmarkFig05_RaceCondition(b *testing.B) {
	const trials = 100
	var reports []bench.RaceReport
	for i := 0; i < b.N; i++ {
		reports = reports[:0]
		for _, policy := range []core.WaitPolicy{core.WaitNone, core.WaitSleepYield, core.WaitQuiescence} {
			rep, err := bench.RaceExperiment(bench.Spec{Scheduler: "quark", Workers: 2, Wait: policy}, trials)
			if err != nil {
				b.Fatal(err)
			}
			reports = append(reports, rep)
		}
	}
	b.ReportMetric(float64(reports[0].Anomalies), "anomalies_none")
	b.ReportMetric(float64(reports[1].Anomalies), "anomalies_sleep")
	b.ReportMetric(float64(reports[2].Anomalies), "anomalies_quiesce")
	var sb strings.Builder
	if err := bench.WriteRaceReport(&sb, reports); err != nil {
		b.Fatal(err)
	}
	b.Logf("Fig. 5 race condition (%d trials/policy):\n%s", trials, sb.String())
}

// BenchmarkFig06_RealTrace regenerates Fig. 6: a measured execution trace
// of tile QR on the QUARK reproduction (paper: N=3960, nb=180, 48 cores;
// scaled here).
func BenchmarkFig06_RealTrace(b *testing.B) {
	spec := benchSpec("qr", "quark", 8)
	var res bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = bench.Measured(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GFlops, "GFLOP/s")
	b.ReportMetric(res.Makespan, "makespan_s")
	b.ReportMetric(res.Trace.Efficiency(), "efficiency")
	b.Logf("Fig. 6 measured trace: makespan %.4fs, %d tasks, per-worker %v",
		res.Makespan, res.NumTasks, res.Trace.TasksPerWorker())
}

// BenchmarkFig07_SimTrace regenerates Fig. 7: the simulated trace of the
// same configuration, with fidelity metrics against the measured trace.
func BenchmarkFig07_SimTrace(b *testing.B) {
	spec := benchSpec("qr", "quark", 8)
	var rep bench.TraceReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.TraceExperiment(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Comparison.MakespanErrorPct, "err_%")
	b.ReportMetric(rep.WallSpeedup, "sim_speedup_x")
	var sb strings.Builder
	if err := bench.WriteTraceReport(&sb, rep); err != nil {
		b.Fatal(err)
	}
	b.Logf("Figs. 6-7 trace comparison:\n%s", sb.String())
}

// perfBenchmark shares the Figs. 8-10 body: the QR and Cholesky sweeps for
// one scheduler.
func perfBenchmark(b *testing.B, scheduler string, fig string) {
	b.Helper()
	var results []bench.PerfSweepResult
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, alg := range []string{"qr", "cholesky"} {
			res, err := bench.PerfSweep(scheduler, alg, 96, 7, 8, 0, 42)
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, res)
		}
	}
	b.ReportMetric(results[0].MaxErrPct(), "maxerr_qr_%")
	b.ReportMetric(results[1].MaxErrPct(), "maxerr_chol_%")
	var sb strings.Builder
	for _, r := range results {
		if err := bench.WritePerfSweep(&sb, r); err != nil {
			b.Fatal(err)
		}
		sb.WriteString("\n")
	}
	b.Logf("Fig. %s performance sweep (%s):\n%s", fig, scheduler, sb.String())
}

// BenchmarkFig08_OmpSsPerf regenerates Fig. 8: real vs simulated GFLOP/s
// and error for QR and Cholesky on the OmpSs reproduction.
func BenchmarkFig08_OmpSsPerf(b *testing.B) { perfBenchmark(b, "ompss", "8") }

// BenchmarkFig09_StarPUPerf regenerates Fig. 9 for the StarPU reproduction.
func BenchmarkFig09_StarPUPerf(b *testing.B) { perfBenchmark(b, "starpu", "9") }

// BenchmarkFig10_QUARKPerf regenerates Fig. 10 for the QUARK reproduction.
func BenchmarkFig10_QUARKPerf(b *testing.B) { perfBenchmark(b, "quark", "10") }

// BenchmarkAbl_SimSpeedup quantifies the Section III "Accelerated
// Simulation Time" claim (A1).
func BenchmarkAbl_SimSpeedup(b *testing.B) {
	spec := benchSpec("qr", "quark", 8)
	var rep bench.SpeedupReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.SpeedupExperiment(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Speedup, "speedup_x")
	b.ReportMetric(rep.MakespanErrPct, "err_%")
	b.Logf("A1 simulation speedup: real %.3fs wall vs simulated %.5fs wall = %.0fx (makespan error %.2f%%)",
		rep.RealWallSec, rep.SimWallSec, rep.Speedup, rep.MakespanErrPct)
}

// BenchmarkAbl_WaitPolicy compares the Section V-E race mitigations (A2).
func BenchmarkAbl_WaitPolicy(b *testing.B) {
	spec := benchSpec("cholesky", "quark", 6)
	var points []bench.WaitPolicyPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.WaitPolicyExperiment(spec, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Policy == "quiescence" {
			b.ReportMetric(p.MakespanErrPct, "quiesce_err_%")
		}
		if p.Policy == "none" {
			b.ReportMetric(float64(p.RaceAnomalies), "none_anomalies")
		}
	}
	var sb strings.Builder
	if err := bench.WriteWaitPolicyStudy(&sb, points); err != nil {
		b.Fatal(err)
	}
	b.Logf("A2 wait-policy study:\n%s", sb.String())
}

// BenchmarkAbl_DurationModel compares duration-model families (A3): the
// Section V-B argument that fitted distributions beat constant/uniform.
func BenchmarkAbl_DurationModel(b *testing.B) {
	spec := benchSpec("qr", "quark", 7)
	var points []bench.ModelFamilyPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.DurationModelExperiment(spec, []dist.Family{
			dist.FamConstant, dist.FamUniform, dist.FamNormal, dist.FamGamma, dist.FamLogNormal,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Family == "lognormal" {
			b.ReportMetric(p.MakespanErrPct, "lognorm_err_%")
		}
		if p.Family == "constant" {
			b.ReportMetric(p.MakespanErrPct, "const_err_%")
		}
	}
	var sb strings.Builder
	if err := bench.WriteModelFamilyStudy(&sb, points); err != nil {
		b.Fatal(err)
	}
	b.Logf("A3 duration-model study:\n%s", sb.String())
}

// BenchmarkExt_MultiThreadedTasks exercises the Section VII multi-threaded
// task extension (A4): gang-scheduled panel kernels shorten the critical
// path of tile QR.
func BenchmarkExt_MultiThreadedTasks(b *testing.B) {
	spec := benchSpec("qr", "quark", 6)
	model := core.ClassMap{
		string(kernels.ClassGEQRT): 4e-3,
		string(kernels.ClassORMQR): 1e-3,
		string(kernels.ClassTSQRT): 1e-3,
		string(kernels.ClassTSMQR): 1e-3,
	}
	var rep bench.GangReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.GangExperiment(spec, 4, model)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.SpeedupPct, "gang_gain_%")
	b.Logf("A4 multi-threaded panels: single %.4fs vs %d-thread gang %.4fs (%.1f%% faster)",
		rep.SingleMakespan, rep.GangThreads, rep.GangMakespan, rep.SpeedupPct)
}

// BenchmarkExt_AcceleratorTasks exercises the Section VII accelerator
// extension (A5): StarPU dm policy with GPU-like workers.
func BenchmarkExt_AcceleratorTasks(b *testing.B) {
	spec := benchSpec("cholesky", "starpu", 7)
	_, collector, err := bench.Measured(spec)
	if err != nil {
		b.Fatal(err)
	}
	model, _, err := benchFit(collector)
	if err != nil {
		b.Fatal(err)
	}
	var rep bench.AcceleratorReport
	for i := 0; i < b.N; i++ {
		rep, err = bench.AcceleratorExperiment(spec, 2, 4.0, model)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Speedup, "hybrid_speedup_x")
	b.ReportMetric(rep.AccelTaskShare*100, "accel_task_%")
	b.Logf("A5 accelerators: CPU-only %.4fs vs +%d accel (4x kernels) %.4fs = %.2fx; accelerators ran %.0f%% of tasks",
		rep.CPUOnlyMakespan, rep.Accelerators, rep.HybridMakespan, rep.Speedup, rep.AccelTaskShare*100)
}

// BenchmarkExt_TileLU runs the full measured-calibrate-simulate pipeline
// on the third tile algorithm (LU without pivoting, beyond the paper's two
// case studies) to show the library generalizes (A7).
func BenchmarkExt_TileLU(b *testing.B) {
	spec := benchSpec("lu", "quark", 7)
	var rep bench.TraceReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.TraceExperiment(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Comparison.MakespanErrorPct, "err_%")
	b.ReportMetric(rep.Real.GFlops, "real_GFLOP/s")
	b.Logf("A7 tile LU: real %.4fs vs simulated %.4fs (%.2f%% error), %d tasks",
		rep.Real.Makespan, rep.Sim.Makespan, rep.Comparison.MakespanErrorPct, rep.Real.NumTasks)
}

// BenchmarkExt_StartupPenalty exercises the Section VII start-up penalty
// model (A6) on a small problem where warmup dominates.
func BenchmarkExt_StartupPenalty(b *testing.B) {
	spec := benchSpec("cholesky", "quark", 4)
	var rep bench.WarmupReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.WarmupExperiment(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.PlainErrPct, "plain_err_%")
	b.ReportMetric(rep.WarmupErrPct, "warmup_err_%")
	b.Logf("A6 start-up penalty (fitted %.2fx): error without warmup model %.2f%%, with %.2f%%",
		rep.FittedPenalty, rep.PlainErrPct, rep.WarmupErrPct)
}

// benchFit fits the paper's three families to a collector (helper shared
// by the extension benchmarks).
func benchFit(c *perfmodel.Collector) (*perfmodel.Model, []perfmodel.ClassFit, error) {
	return perfmodel.Fit(c, dist.PaperFamilies)
}

// BenchmarkStudy_PolicyComparison compares StarPU's four scheduling
// policies on synthetic workloads in simulation — the kind of cheap
// scheduler study the paper's tool exists to enable.
func BenchmarkStudy_PolicyComparison(b *testing.B) {
	w := workload.RandomLayeredDAG(10, 12, 3, 0.002, 42)
	var points []bench.PolicyPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.PolicyStudy(w, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	var best, worst bench.PolicyPoint
	for i, p := range points {
		if i == 0 || p.Makespan < best.Makespan {
			best = p
		}
		if i == 0 || p.Makespan > worst.Makespan {
			worst = p
		}
	}
	b.ReportMetric(best.Makespan, "best_makespan_s")
	b.ReportMetric(worst.Makespan/best.Makespan, "worst_best_ratio")
	var sb strings.Builder
	if err := bench.WritePolicyStudy(&sb, points); err != nil {
		b.Fatal(err)
	}
	b.Logf("policy study on %s (6 workers):\n%s", w.Name, sb.String())
}

// BenchmarkStudy_StrongScaling predicts strong scaling of tile Cholesky
// from one calibration and validates two core counts against measured
// runs — the autotuning workflow of Section VI-B.
func BenchmarkStudy_StrongScaling(b *testing.B) {
	spec := benchSpec("cholesky", "quark", 7)
	spec.Workers = 2
	var points []bench.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.ScalingStudy(spec, 12, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[len(points)-1].Speedup, "speedup_12w")
	for _, p := range points {
		if p.Workers == 8 && p.RealMakespan > 0 {
			b.ReportMetric(p.ErrPct, "err_8w_%")
		}
	}
	var sb strings.Builder
	if err := bench.WriteScalingStudy(&sb, spec, points); err != nil {
		b.Fatal(err)
	}
	b.Logf("strong-scaling study:\n%s", sb.String())
}

// BenchmarkStudy_FaultResilience quantifies makespan degradation under the
// deterministic fault suite (transient failures, kernel panics, stragglers,
// dead cores, all combined) for all three runtimes — the robustness study
// enabled by internal/fault.
func BenchmarkStudy_FaultResilience(b *testing.B) {
	spec := benchSpec("cholesky", "", 8)
	spec.StallDeadline = 30 * time.Second
	model := bench.FaultModel(spec.Algorithm, spec.NB)
	scenarios := bench.DefaultFaultScenarios(1)
	var points []bench.FaultPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.FaultStudy(spec, model, scenarios)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	retried := 0
	for _, p := range points {
		if p.DegradationPct > worst {
			worst = p.DegradationPct
		}
		retried += p.Retried
		var stall *fault.StallError
		if errors.As(p.Err, &stall) {
			b.Fatalf("%s/%s wedged: %v", p.Scheduler, p.Scenario, p.Err)
		}
	}
	b.ReportMetric(worst, "worst_degradation_%")
	b.ReportMetric(float64(retried), "retries")
	var sb strings.Builder
	if err := bench.WriteFaultStudy(&sb, points); err != nil {
		b.Fatal(err)
	}
	b.Logf("fault-resilience study (%d workers):\n%s", spec.Workers, sb.String())
}
