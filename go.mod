module supersim

go 1.22
